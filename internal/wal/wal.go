package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
	"sync"
)

// SyncPolicy controls when an appended record is forced to stable storage.
type SyncPolicy int

const (
	// SyncGroup fsyncs before acknowledging a commit, but one fsync covers
	// every record appended up to the moment it runs: concurrent committers
	// queue behind the in-flight fsync and are acknowledged together
	// (group commit). Durable, amortized.
	SyncGroup SyncPolicy = iota
	// SyncAlways issues one fsync per Durable call, with no sharing.
	SyncAlways
	// SyncOff never fsyncs; data is flushed to the OS but a machine crash
	// can lose the tail. Fastest, for bulk loads that can be re-run.
	SyncOff
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return "group"
	}
}

// ParseSyncPolicy parses "always", "group" or "off".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "group", "":
		return SyncGroup, nil
	case "off":
		return SyncOff, nil
	}
	return SyncGroup, fmt.Errorf("wal: unknown fsync policy %q (always, group, off)", s)
}

// Options configures a WAL.
type Options struct {
	// Sync is the fsync policy (default SyncGroup).
	Sync SyncPolicy
	// SegmentSize rotates to a new segment file once the active one
	// exceeds this many bytes (default 4 MiB).
	SegmentSize int64
	// StartLSN floors the LSN sequence: the first Append returns at least
	// StartLSN+1 even when the surviving segments hold no records (they
	// may legitimately hold OLDER ones not yet pruned). The database
	// passes the LSN of the checkpoint it recovered, so a log whose tail
	// was fully checkpointed away never restarts numbering from 1 — which
	// would name the new active segment out of order.
	StartLSN uint64
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 4 << 20
	}
	return o
}

// Segment file layout:
//
//	header:  magic "GMWAL1\n" (7 bytes) + 1 reserved byte
//	records: length u32 | crc u32 | lsn u64 | payload
//
// crc is IEEE CRC32 over lsn+payload. length is the payload length. A
// record that fails length sanity, CRC, or runs past EOF is torn; torn
// records are tolerated (and truncated away) only at the very tail of the
// newest segment — anywhere else they are corruption.
const (
	segMagic      = "GMWAL1\n\x00"
	frameHead     = 4 + 4 + 8
	maxRecordSize = 1 << 30
)

// segPrefix and segName format segment file names so lexicographic order
// is first-LSN order.
const segPrefix = "wal-"

func segName(firstLSN uint64) string { return fmt.Sprintf("%s%020d.seg", segPrefix, firstLSN) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	var lsn uint64
	_, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), ".seg"), "%d", &lsn)
	return lsn, err == nil
}

// ErrCorrupt reports a CRC/framing failure before the physical tail of the
// log — data loss that truncation must not paper over.
var ErrCorrupt = errors.New("wal: corrupt record before log tail")

// Stats is a snapshot of the WAL's counters.
type Stats struct {
	// Appends counts records appended in this process.
	Appends uint64 `json:"appends"`
	// Fsyncs counts fsync calls issued by Durable and rotation.
	Fsyncs uint64 `json:"fsyncs"`
	// GroupCommits counts Durable calls satisfied by somebody else's
	// fsync (the group-commit win: acknowledged without touching disk).
	GroupCommits uint64 `json:"group_commits"`
	// MaxGroupSize is the largest number of records one fsync covered.
	MaxGroupSize uint64 `json:"max_group_size"`
	// LastLSN is the highest LSN appended (or recovered).
	LastLSN uint64 `json:"last_lsn"`
	// DurableLSN is the highest LSN known to be on stable storage.
	DurableLSN uint64 `json:"durable_lsn"`
	// Segments is the number of live segment files.
	Segments int `json:"segments"`
	// TornTailTruncations counts torn record tails dropped during Open.
	TornTailTruncations uint64 `json:"torn_tail_truncations"`
	// SizeBytes is the total size of live segment files.
	SizeBytes int64 `json:"size_bytes"`
}

// WAL is an append-only, CRC-checked, segmented record log.
type WAL struct {
	fs   FS
	opts Options

	mu       sync.Mutex // guards the fields below
	segNames []string   // live segments, oldest first (includes active)
	segSizes []int64
	f        File          // active segment
	w        *bufio.Writer // buffers appends into f
	size     int64         // bytes written to active segment
	nextLSN  uint64
	failed   error // sticky: first IO error poisons the log

	syncMu     sync.Mutex // serializes durability rounds; guards durableLSN
	durableLSN uint64

	appends, fsyncs, groupCommits, maxGroup, tornTruncs uint64
}

// Open scans the segment files in fs, truncates a torn tail on the newest
// segment, determines the next LSN, and starts a fresh active segment.
// Records already in the log are not re-read here; use Replay.
func Open(fs FS, opts Options) (*WAL, error) {
	w := &WAL{fs: fs, opts: opts.withDefaults()}
	if err := w.scan(); err != nil {
		return nil, err
	}
	if w.nextLSN <= w.opts.StartLSN {
		w.nextLSN = w.opts.StartLSN + 1
	}
	w.durableLSN = w.nextLSN - 1
	if err := w.openSegment(); err != nil {
		return nil, err
	}
	return w, nil
}

// scan validates existing segments, truncating a torn tail on the last one
// and recording sizes, and positions nextLSN after the last valid record.
func (w *WAL) scan() error {
	names, err := sortedList(w.fs)
	if err != nil {
		return fmt.Errorf("wal: list segments: %w", err)
	}
	var segs []string
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			segs = append(segs, n)
		}
	}
	w.nextLSN = 1
	for i, name := range segs {
		last := i == len(segs)-1
		validSize, lastLSN, err := w.scanSegment(name, last)
		if err != nil {
			return err
		}
		if lastLSN >= w.nextLSN {
			w.nextLSN = lastLSN + 1
		}
		w.segNames = append(w.segNames, name)
		w.segSizes = append(w.segSizes, validSize)
	}
	return nil
}

// scanSegment walks one segment's records. When tolerateTail is set a
// torn record truncates the file at the last valid offset; otherwise it
// is ErrCorrupt.
func (w *WAL) scanSegment(name string, tolerateTail bool) (validSize int64, lastLSN uint64, err error) {
	f, err := w.fs.Open(name)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: open segment %s: %w", name, err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)

	truncate := func(at int64, why string) (int64, uint64, error) {
		if !tolerateTail {
			return 0, 0, fmt.Errorf("%w: segment %s at offset %d (%s)", ErrCorrupt, name, at, why)
		}
		if err := w.fs.Truncate(name, at); err != nil {
			return 0, 0, fmt.Errorf("wal: truncate torn tail of %s: %w", name, err)
		}
		w.tornTruncs++
		return at, lastLSN, nil
	}

	head := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, head); err != nil {
		// Missing/partial header: an empty just-created segment lost at
		// crash. Truncate to zero (tail) or corrupt (middle).
		return truncate(0, "short header")
	}
	if string(head) != segMagic {
		return 0, 0, fmt.Errorf("%w: segment %s has bad magic", ErrCorrupt, name)
	}
	off := int64(len(segMagic))
	var hdr [frameHead]byte
	for {
		_, err := io.ReadFull(r, hdr[:])
		if err == io.EOF {
			return off, lastLSN, nil // clean end
		}
		if err != nil {
			return truncate(off, "short frame header")
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		lsn := binary.LittleEndian.Uint64(hdr[8:16])
		if length > maxRecordSize {
			return truncate(off, "implausible record length")
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return truncate(off, "short payload")
		}
		h := crc32.NewIEEE()
		h.Write(hdr[8:16])
		h.Write(payload)
		if h.Sum32() != crc {
			return truncate(off, "crc mismatch")
		}
		if lsn < w.nextLSN || (lastLSN != 0 && lsn != lastLSN+1) {
			return 0, 0, fmt.Errorf("%w: segment %s at offset %d (LSN %d out of sequence)", ErrCorrupt, name, off, lsn)
		}
		lastLSN = lsn
		off += frameHead + int64(length)
	}
}

// openSegment starts a fresh active segment named after the next LSN.
// Recovery never appends to an old segment, so a pre-crash torn tail can
// never be overwritten by new records.
func (w *WAL) openSegment() error {
	name := segName(w.nextLSN)
	f, err := w.fs.Create(name)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.WriteString(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	w.f = f
	w.w = bw
	w.size = int64(len(segMagic))
	// A scan that ended on an empty segment leaves nextLSN where that
	// segment started; Create just truncated that same file, so replace
	// its entry instead of listing the name twice.
	if n := len(w.segNames); n > 0 && w.segNames[n-1] == name {
		w.segSizes[n-1] = w.size
		return nil
	}
	w.segNames = append(w.segNames, name)
	w.segSizes = append(w.segSizes, w.size)
	return nil
}

// Replay streams every valid record with fromLSN <= lsn to fn, in LSN
// order. Call it after Open and before the first Append.
func (w *WAL) Replay(fromLSN uint64, fn func(lsn uint64, payload []byte) error) error {
	w.mu.Lock()
	segs := make([]string, len(w.segNames))
	copy(segs, w.segNames)
	w.mu.Unlock()
	for _, name := range segs {
		if err := w.replaySegment(name, fromLSN, fn); err != nil {
			return err
		}
	}
	return nil
}

func (w *WAL) replaySegment(name string, fromLSN uint64, fn func(uint64, []byte) error) error {
	f, err := w.fs.Open(name)
	if err != nil {
		return fmt.Errorf("wal: open segment %s: %w", name, err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	head := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, head); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil // truncated-to-empty segment
		}
		return err
	}
	if string(head) != segMagic {
		return fmt.Errorf("%w: segment %s has bad magic", ErrCorrupt, name)
	}
	var hdr [frameHead]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("wal: replay %s: %w", name, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		lsn := binary.LittleEndian.Uint64(hdr[8:16])
		if length > maxRecordSize {
			return fmt.Errorf("%w: segment %s (implausible length)", ErrCorrupt, name)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("wal: replay %s: %w", name, err)
		}
		h := crc32.NewIEEE()
		h.Write(hdr[8:16])
		h.Write(payload)
		if h.Sum32() != crc {
			return fmt.Errorf("%w: segment %s (crc)", ErrCorrupt, name)
		}
		if lsn >= fromLSN {
			if err := fn(lsn, payload); err != nil {
				return err
			}
		}
	}
}

// AdvanceTo bumps the LSN counter so the next Append returns at least
// lsn+1. The database calls this after loading a checkpoint newer than
// the surviving log records.
func (w *WAL) AdvanceTo(lsn uint64) {
	// Lock order everywhere else is syncMu before mu (Durable, Rotate,
	// Stats); keep the two sections disjoint here rather than nesting
	// them the other way around.
	w.mu.Lock()
	if w.nextLSN <= lsn {
		w.nextLSN = lsn + 1
	}
	w.mu.Unlock()
	w.syncMu.Lock()
	if w.durableLSN < lsn {
		w.durableLSN = lsn
	}
	w.syncMu.Unlock()
}

// Append writes one record to the log buffer and assigns its LSN. The
// record is NOT durable until Durable(lsn) returns; the caller decides
// when (and whether) to wait. Appends are ordered: callers serialized by
// an external commit lock get log order == commit order.
func (w *WAL) Append(payload []byte) (uint64, error) {
	if len(payload) > maxRecordSize {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	w.mu.Lock()
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return 0, err
	}
	lsn := w.nextLSN
	var hdr [frameHead]byte
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	h := crc32.NewIEEE()
	h.Write(hdr[8:16])
	h.Write(payload)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], h.Sum32())
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.failed = fmt.Errorf("wal: append: %w", err)
		err = w.failed
		w.mu.Unlock()
		return 0, err
	}
	if _, err := w.w.Write(payload); err != nil {
		w.failed = fmt.Errorf("wal: append: %w", err)
		err = w.failed
		w.mu.Unlock()
		return 0, err
	}
	w.nextLSN++
	w.appends++
	w.size += frameHead + int64(len(payload))
	w.segSizes[len(w.segSizes)-1] = w.size
	needRotate := w.size >= w.opts.SegmentSize
	w.mu.Unlock()
	if needRotate {
		//gmlint:ignore errdrop rotation failure poisons the log via w.failed; the record was already appended, so the commit proceeds
		_ = w.Rotate()
	}
	return lsn, nil
}

// Durable blocks until the record with the given LSN is on stable storage
// (per the sync policy). Under SyncGroup, one fsync acknowledges every
// record appended before it ran: callers whose LSN an earlier round
// already covered return without touching the disk.
func (w *WAL) Durable(lsn uint64) error {
	if w.opts.Sync == SyncOff {
		return w.flush()
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.opts.Sync == SyncGroup && w.durableLSN >= lsn {
		w.groupCommitted()
		return nil
	}
	return w.syncLocked()
}

// groupCommitted counts a Durable call satisfied without an fsync. Caller
// holds syncMu.
func (w *WAL) groupCommitted() { w.groupCommits++ }

// syncLocked flushes the buffer and fsyncs the active segment, advancing
// durableLSN to everything appended before the flush. Caller holds syncMu.
func (w *WAL) syncLocked() error {
	w.mu.Lock()
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return err
	}
	target := w.nextLSN - 1
	err := w.w.Flush()
	if err != nil {
		w.failed = fmt.Errorf("wal: flush: %w", err)
		err = w.failed
	}
	f := w.f
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		w.mu.Lock()
		w.failed = fmt.Errorf("wal: fsync: %w", err)
		err = w.failed
		w.mu.Unlock()
		return err
	}
	w.fsyncs++
	if target > w.durableLSN {
		if g := target - w.durableLSN; g > w.maxGroup {
			w.maxGroup = g
		}
		w.durableLSN = target
	}
	return nil
}

// flush pushes buffered bytes to the OS without fsync (SyncOff).
func (w *WAL) flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	if err := w.w.Flush(); err != nil {
		w.failed = fmt.Errorf("wal: flush: %w", err)
		return w.failed
	}
	return nil
}

// Rotate seals the active segment (flush + fsync + close) and starts a new
// one. Sealed segments are immutable and become prunable once a checkpoint
// covers them.
func (w *WAL) Rotate() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	sealedLast := w.nextLSN - 1
	if err := w.w.Flush(); err != nil {
		w.failed = fmt.Errorf("wal: rotate flush: %w", err)
		return w.failed
	}
	if err := w.f.Sync(); err != nil {
		w.failed = fmt.Errorf("wal: rotate fsync: %w", err)
		return w.failed
	}
	w.fsyncs++
	if sealedLast > w.durableLSN {
		w.durableLSN = sealedLast
	}
	if err := w.f.Close(); err != nil {
		// The segment is already flushed and fsynced, but a close failure
		// still signals an unhealthy FD: poison the log like every other
		// rotate-path failure rather than writing on through it.
		w.failed = fmt.Errorf("wal: rotate close: %w", err)
		return w.failed
	}
	if err := w.openSegment(); err != nil {
		w.failed = err
		return err
	}
	return nil
}

// Prune removes sealed segments whose every record has LSN <= uptoLSN
// (because a checkpoint now covers them). The active segment is never
// removed. A segment's records are bounded by the first LSN of the NEXT
// segment, so segment i is prunable iff firstLSN(i+1) <= uptoLSN+1.
func (w *WAL) Prune(uptoLSN uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, name := range w.segNames {
		prunable := false
		if i+1 < len(w.segNames) {
			if next, ok := parseSegName(w.segNames[i+1]); ok && next <= uptoLSN+1 {
				prunable = true
			}
		}
		if !prunable {
			w.segNames = append(w.segNames[:0], w.segNames[i:]...)
			w.segSizes = append(w.segSizes[:0], w.segSizes[i:]...)
			return nil
		}
		if err := w.fs.Remove(name); err != nil {
			return fmt.Errorf("wal: prune %s: %w", name, err)
		}
	}
	return nil
}

// LastLSN returns the highest LSN assigned so far (0 when empty).
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN - 1
}

// TornTruncations returns how many torn tails Open dropped.
func (w *WAL) TornTruncations() uint64 { return w.tornTruncs }

// Stats returns a snapshot of the log's counters.
func (w *WAL) Stats() Stats {
	w.syncMu.Lock()
	durable := w.durableLSN
	groups := w.groupCommits
	maxGroup := w.maxGroup
	fsyncs := w.fsyncs
	w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	var size int64
	for _, s := range w.segSizes {
		size += s
	}
	return Stats{
		Appends:             w.appends,
		Fsyncs:              fsyncs,
		GroupCommits:        groups,
		MaxGroupSize:        maxGroup,
		LastLSN:             w.nextLSN - 1,
		DurableLSN:          durable,
		Segments:            len(w.segNames),
		TornTailTruncations: w.tornTruncs,
		SizeBytes:           size,
	}
}

// Close flushes, fsyncs (unless SyncOff) and closes the active segment.
func (w *WAL) Close() error {
	var err error
	if w.opts.Sync != SyncOff {
		w.syncMu.Lock()
		err = w.syncLocked()
		w.syncMu.Unlock()
	} else {
		err = w.flush()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	if w.failed == nil {
		w.failed = errors.New("wal: closed")
	}
	return err
}
