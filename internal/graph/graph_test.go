package graph

import (
	"testing"

	"genmapper/internal/gam"
	"genmapper/internal/sqldb"
)

// chainGraph builds 1 - 2 - 3 - 4 plus a shortcut 1 - 5 - 4.
func chainGraph() *Graph {
	g := New()
	g.AddMapping(EdgeInfo{Rel: 1, From: 1, To: 2, Type: gam.RelFact})
	g.AddMapping(EdgeInfo{Rel: 2, From: 2, To: 3, Type: gam.RelFact})
	g.AddMapping(EdgeInfo{Rel: 3, From: 3, To: 4, Type: gam.RelFact})
	g.AddMapping(EdgeInfo{Rel: 4, From: 1, To: 5, Type: gam.RelSimilarity})
	g.AddMapping(EdgeInfo{Rel: 5, From: 5, To: 4, Type: gam.RelSimilarity})
	return g
}

func pathEq(got []gam.SourceID, want ...gam.SourceID) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestShortestPath(t *testing.T) {
	g := chainGraph()
	if p := g.ShortestPath(1, 4); !pathEq(p, 1, 5, 4) {
		t.Errorf("ShortestPath(1,4) = %v, want [1 5 4]", p)
	}
	if p := g.ShortestPath(1, 3); !pathEq(p, 1, 2, 3) {
		t.Errorf("ShortestPath(1,3) = %v", p)
	}
	if p := g.ShortestPath(2, 2); !pathEq(p, 2) {
		t.Errorf("same-source path = %v", p)
	}
	if p := g.ShortestPath(1, 99); p != nil {
		t.Errorf("unreachable path = %v", p)
	}
}

func TestShortestPathBidirectional(t *testing.T) {
	g := chainGraph()
	// Mappings are traversable in reverse direction.
	if p := g.ShortestPath(4, 1); !pathEq(p, 4, 5, 1) {
		t.Errorf("reverse path = %v", p)
	}
}

func TestShortestPathVia(t *testing.T) {
	g := chainGraph()
	if p := g.ShortestPathVia(1, 2, 4); !pathEq(p, 1, 2, 3, 4) {
		t.Errorf("via path = %v, want [1 2 3 4]", p)
	}
	if p := g.ShortestPathVia(1, 99, 4); p != nil {
		t.Errorf("via unreachable = %v", p)
	}
}

func TestShortestPathViaDegenerate(t *testing.T) {
	g := chainGraph()
	// src == via degenerates to a plain shortest path.
	if p := g.ShortestPathVia(1, 1, 4); !pathEq(p, 1, 5, 4) {
		t.Errorf("src==via path = %v, want [1 5 4]", p)
	}
	// via == dst likewise.
	if p := g.ShortestPathVia(1, 4, 4); !pathEq(p, 1, 5, 4) {
		t.Errorf("via==dst path = %v, want [1 5 4]", p)
	}
	// src == via == dst is the trivial single-node path.
	if p := g.ShortestPathVia(3, 3, 3); !pathEq(p, 3) {
		t.Errorf("all-equal path = %v, want [3]", p)
	}
	// The via node may force the path back through the start.
	if p := g.ShortestPathVia(2, 1, 4); !pathEq(p, 2, 1, 5, 4) {
		t.Errorf("backtracking via path = %v, want [2 1 5 4]", p)
	}

	// Disconnected halves: 6 - 7 is its own component.
	g.AddMapping(EdgeInfo{Rel: 6, From: 6, To: 7, Type: gam.RelFact})
	// First half (src -> via) disconnected.
	if p := g.ShortestPathVia(6, 2, 4); p != nil {
		t.Errorf("disconnected first half = %v", p)
	}
	// Second half (via -> dst) disconnected.
	if p := g.ShortestPathVia(1, 2, 7); p != nil {
		t.Errorf("disconnected second half = %v", p)
	}
	// src and dst connected to each other but via isolated from both.
	if p := g.ShortestPathVia(1, 6, 4); p != nil {
		t.Errorf("isolated via = %v", p)
	}
}

func TestStructuralAndSelfEdgesExcluded(t *testing.T) {
	g := New()
	g.AddMapping(EdgeInfo{Rel: 1, From: 1, To: 1, Type: gam.RelIsA})
	g.AddMapping(EdgeInfo{Rel: 2, From: 1, To: 2, Type: gam.RelContains})
	g.AddMapping(EdgeInfo{Rel: 3, From: 1, To: 1, Type: gam.RelFact})
	if len(g.Sources()) != 0 {
		t.Errorf("structural/self edges created sources: %v", g.Sources())
	}
	if p := g.ShortestPath(1, 2); p != nil {
		t.Errorf("structural edge traversed: %v", p)
	}
}

func TestNeighborsAndCounts(t *testing.T) {
	g := chainGraph()
	nb := g.Neighbors(1)
	if len(nb) != 2 || nb[0] != 2 || nb[1] != 5 {
		t.Errorf("Neighbors(1) = %v", nb)
	}
	if g.EdgeCount() != 5 {
		t.Errorf("EdgeCount = %d", g.EdgeCount())
	}
	if len(g.Sources()) != 5 {
		t.Errorf("Sources = %v", g.Sources())
	}
}

func TestAllPaths(t *testing.T) {
	g := chainGraph()
	paths := g.AllPaths(1, 4, 3)
	if len(paths) != 2 {
		t.Fatalf("AllPaths = %v", paths)
	}
	if !pathEq(paths[0], 1, 5, 4) || !pathEq(paths[1], 1, 2, 3, 4) {
		t.Errorf("paths = %v", paths)
	}
	// Length bound respected.
	paths = g.AllPaths(1, 4, 2)
	if len(paths) != 1 {
		t.Errorf("bounded paths = %v", paths)
	}
}

func TestSavedPaths(t *testing.T) {
	g := chainGraph()
	if err := g.SavePath("viaChain", []gam.SourceID{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	p, ok := g.SavedPath("viaChain")
	if !ok || !pathEq(p, 1, 2, 3, 4) {
		t.Fatalf("SavedPath = %v, %v", p, ok)
	}
	if names := g.SavedPathNames(); len(names) != 1 || names[0] != "viaChain" {
		t.Errorf("names = %v", names)
	}
	// Unknown name.
	if _, ok := g.SavedPath("nope"); ok {
		t.Error("unknown saved path found")
	}
	// Disconnected path rejected.
	if err := g.SavePath("broken", []gam.SourceID{1, 3}); err == nil {
		t.Error("disconnected path accepted")
	}
	if err := g.SavePath("", []gam.SourceID{1, 2}); err == nil {
		t.Error("unnamed path accepted")
	}
	if err := g.SavePath("short", []gam.SourceID{1}); err == nil {
		t.Error("single-node path accepted")
	}
	// Returned slice is a copy.
	p[0] = 99
	p2, _ := g.SavedPath("viaChain")
	if p2[0] != 1 {
		t.Error("SavedPath leaked internal state")
	}
}

func TestBuildFromRepo(t *testing.T) {
	repo, err := gam.Open(sqldb.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	a, _, _ := repo.EnsureSource(gam.Source{Name: "A"})
	b, _, _ := repo.EnsureSource(gam.Source{Name: "B"})
	c, _, _ := repo.EnsureSource(gam.Source{Name: "C"})
	repo.EnsureSourceRel(a.ID, b.ID, gam.RelFact)
	repo.EnsureSourceRel(b.ID, c.ID, gam.RelSimilarity)
	repo.EnsureSourceRel(c.ID, c.ID, gam.RelIsA) // structural, skipped

	g, err := Build(repo)
	if err != nil {
		t.Fatal(err)
	}
	if p := g.ShortestPath(a.ID, c.ID); !pathEq(p, a.ID, b.ID, c.ID) {
		t.Errorf("path = %v", p)
	}
	if g.EdgeCount() != 2 {
		t.Errorf("EdgeCount = %d, want 2 (structural excluded)", g.EdgeCount())
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Two equal-length paths: BFS must prefer the lower source IDs.
	g := New()
	g.AddMapping(EdgeInfo{Rel: 1, From: 1, To: 2, Type: gam.RelFact})
	g.AddMapping(EdgeInfo{Rel: 2, From: 1, To: 3, Type: gam.RelFact})
	g.AddMapping(EdgeInfo{Rel: 3, From: 2, To: 4, Type: gam.RelFact})
	g.AddMapping(EdgeInfo{Rel: 4, From: 3, To: 4, Type: gam.RelFact})
	for i := 0; i < 10; i++ {
		if p := g.ShortestPath(1, 4); !pathEq(p, 1, 2, 4) {
			t.Fatalf("tie-break path = %v, want [1 2 4]", p)
		}
	}
}
