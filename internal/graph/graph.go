// Package graph maintains GenMapper's graph of sources and mappings and
// the path search used by the interactive interface (paper §5.1):
// "GenMapper internally manages a graph of all available sources and
// mappings. Using a shortest path algorithm, GenMapper is able to
// automatically determine a mapping path to traverse from the source to
// any specified target."
//
// It supports automatic shortest paths, constrained search through a
// required intermediate source, enumeration of alternative paths, and
// named saved paths customized for specific analyses.
package graph

import (
	"fmt"
	"sort"
	"sync"

	"genmapper/internal/gam"
)

// EdgeInfo describes one mapping usable for traversal.
type EdgeInfo struct {
	Rel  gam.SourceRelID
	From gam.SourceID
	To   gam.SourceID
	Type gam.RelType
}

// Graph is the source/mapping graph. Mappings are traversed in both
// directions. Structural mappings (IS_A, Contains) connect a source to
// itself and never contribute edges between different sources.
type Graph struct {
	mu    sync.RWMutex
	adj   map[gam.SourceID][]EdgeInfo
	saved map[string][]gam.SourceID
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{
		adj:   make(map[gam.SourceID][]EdgeInfo),
		saved: make(map[string][]gam.SourceID),
	}
}

// Build constructs the graph from all mappings in the repository.
func Build(repo *gam.Repo) (*Graph, error) {
	g := New()
	rels, err := repo.SourceRels()
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	for _, r := range rels {
		g.AddMapping(EdgeInfo{Rel: r.ID, From: r.Source1, To: r.Source2, Type: r.Type})
	}
	return g, nil
}

// AddMapping registers a mapping as a bidirectional edge. Structural and
// self mappings are ignored for traversal.
func (g *Graph) AddMapping(e EdgeInfo) {
	if e.Type.IsStructural() || e.From == e.To {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.adj[e.From] = append(g.adj[e.From], e)
	rev := EdgeInfo{Rel: e.Rel, From: e.To, To: e.From, Type: e.Type}
	g.adj[e.To] = append(g.adj[e.To], rev)
}

// Neighbors returns the sources directly connected to s, ascending.
func (g *Graph) Neighbors(s gam.SourceID) []gam.SourceID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := make(map[gam.SourceID]bool)
	for _, e := range g.adj[s] {
		seen[e.To] = true
	}
	out := make([]gam.SourceID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Sources returns all sources that participate in at least one edge.
func (g *Graph) Sources() []gam.SourceID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]gam.SourceID, 0, len(g.adj))
	for id := range g.adj {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EdgeCount returns the number of distinct mappings in the graph.
func (g *Graph) EdgeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	rels := make(map[gam.SourceRelID]bool)
	for _, edges := range g.adj {
		for _, e := range edges {
			rels[e.Rel] = true
		}
	}
	return len(rels)
}

// ShortestPath returns a minimum-hop path of source IDs from src to dst
// (inclusive), or nil when the sources are not connected. Ties break
// deterministically toward lower source IDs.
func (g *Graph) ShortestPath(src, dst gam.SourceID) []gam.SourceID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.bfs(src, dst, 0)
}

// ShortestPathVia returns the shortest path from src to dst that passes
// through the required intermediate source (§5.1: "The user can also
// search in the graph for specific paths, for example, with a particular
// intermediate source").
func (g *Graph) ShortestPathVia(src, via, dst gam.SourceID) []gam.SourceID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	first := g.bfs(src, via, 0)
	if first == nil {
		return nil
	}
	second := g.bfs(via, dst, 0)
	if second == nil {
		return nil
	}
	return append(first, second[1:]...)
}

// bfs runs breadth-first search; maxLen > 0 bounds the path length in
// edges. Caller holds at least a read lock.
func (g *Graph) bfs(src, dst gam.SourceID, maxLen int) []gam.SourceID {
	if src == dst {
		return []gam.SourceID{src}
	}
	if len(g.adj[src]) == 0 {
		return nil
	}
	prev := map[gam.SourceID]gam.SourceID{src: src}
	queue := []gam.SourceID{src}
	depth := map[gam.SourceID]int{src: 0}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if maxLen > 0 && depth[n] >= maxLen {
			continue
		}
		next := make([]gam.SourceID, 0, len(g.adj[n]))
		for _, e := range g.adj[n] {
			next = append(next, e.To)
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, to := range next {
			if _, seen := prev[to]; seen {
				continue
			}
			prev[to] = n
			depth[to] = depth[n] + 1
			if to == dst {
				return reconstruct(prev, src, dst)
			}
			queue = append(queue, to)
		}
	}
	return nil
}

func reconstruct(prev map[gam.SourceID]gam.SourceID, src, dst gam.SourceID) []gam.SourceID {
	var rev []gam.SourceID
	for n := dst; ; n = prev[n] {
		rev = append(rev, n)
		if n == src {
			break
		}
	}
	out := make([]gam.SourceID, len(rev))
	for i, n := range rev {
		out[len(rev)-1-i] = n
	}
	return out
}

// AllPaths enumerates every simple path from src to dst with at most
// maxEdges edges, ordered by length then lexicographically. With a high
// degree of inter-connectivity many paths may exist (§5.1), so callers
// should bound maxEdges.
func (g *Graph) AllPaths(src, dst gam.SourceID, maxEdges int) [][]gam.SourceID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out [][]gam.SourceID
	onPath := map[gam.SourceID]bool{src: true}
	path := []gam.SourceID{src}
	var dfs func(n gam.SourceID)
	dfs = func(n gam.SourceID) {
		if n == dst {
			cp := make([]gam.SourceID, len(path))
			copy(cp, path)
			out = append(out, cp)
			return
		}
		if len(path)-1 >= maxEdges {
			return
		}
		nbrs := make([]gam.SourceID, 0, len(g.adj[n]))
		seen := make(map[gam.SourceID]bool)
		for _, e := range g.adj[n] {
			if !seen[e.To] {
				seen[e.To] = true
				nbrs = append(nbrs, e.To)
			}
		}
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		for _, to := range nbrs {
			if onPath[to] {
				continue
			}
			onPath[to] = true
			path = append(path, to)
			dfs(to)
			path = path[:len(path)-1]
			delete(onPath, to)
		}
	}
	dfs(src)
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// SavePath stores a user-constructed path under a name (§5.1: "GenMapper
// also allows the user to manually build and save a path customized for
// specific analysis requirements"). The path must be connected in the
// graph.
func (g *Graph) SavePath(name string, path []gam.SourceID) error {
	if name == "" {
		return fmt.Errorf("graph: saved path needs a name")
	}
	if len(path) < 2 {
		return fmt.Errorf("graph: path %q must contain at least two sources", name)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := 0; i+1 < len(path); i++ {
		connected := false
		for _, e := range g.adj[path[i]] {
			if e.To == path[i+1] {
				connected = true
				break
			}
		}
		if !connected {
			return fmt.Errorf("graph: path %q: no mapping between sources %d and %d", name, path[i], path[i+1])
		}
	}
	cp := make([]gam.SourceID, len(path))
	copy(cp, path)
	g.saved[name] = cp
	return nil
}

// SavedPath retrieves a stored path by name.
func (g *Graph) SavedPath(name string) ([]gam.SourceID, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	p, ok := g.saved[name]
	if !ok {
		return nil, false
	}
	cp := make([]gam.SourceID, len(p))
	copy(cp, p)
	return cp, true
}

// SavedPathNames lists stored path names in sorted order.
func (g *Graph) SavedPathNames() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.saved))
	for n := range g.saved {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
