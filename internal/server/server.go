// Package server provides GenMapper's interactive query interface (paper
// §5.1, Figure 6) over HTTP: query specification (source, accessions,
// targets, AND/OR combination, per-target negation), annotation-view
// display, object information drill-down, path search, and export in
// several download formats.
package server

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"genmapper"
)

// Config controls optional server features.
type Config struct {
	// EnablePprof registers net/http/pprof handlers under /debug/pprof/ so
	// the serving path can be profiled. Off by default: the endpoints expose
	// internals and should only be enabled deliberately (-pprof flag).
	EnablePprof bool
}

// Server wires a GenMapper system into an http.Handler.
type Server struct {
	sys *genmapper.System
	mux *http.ServeMux
}

// New builds the handler for a system with default configuration.
func New(sys *genmapper.System) *Server { return NewWithConfig(sys, Config{}) }

// NewWithConfig builds the handler for a system.
func NewWithConfig(sys *genmapper.System, cfg Config) *Server {
	s := &Server{sys: sys, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleHome)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/export", s.handleExport)
	s.mux.HandleFunc("/object", s.handleObject)
	s.mux.HandleFunc("/path", s.handlePath)
	s.mux.HandleFunc("/api/sources", s.handleSources)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("/api/explain", s.handleExplain)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>GenMapper</title>
<style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; margin-top: 1em; }
th, td { border: 1px solid #999; padding: 2px 8px; font-size: 90%; }
th { background: #dde; }
textarea { width: 30em; }
.null { color: #bbb; }
</style></head><body>
<h1>GenMapper</h1>
<p>{{.StatsLine}}</p>
<form method="POST" action="/query">
<h2>Query specification</h2>
<p>Source:
<select name="source">{{range .Sources}}<option value="{{.Name}}">{{.Name}}</option>{{end}}</select>
&nbsp; Combine mappings with:
<select name="mode"><option>OR</option><option>AND</option></select>
</p>
<p>Accessions (one per line, empty = whole source):<br>
<textarea name="accessions" rows="4"></textarea></p>
<p>Targets (one per line, prefix with <code>!</code> to negate, suffix
<code>via A&gt;B&gt;C</code> for an explicit path):<br>
<textarea name="targets" rows="4"></textarea></p>
<p>Limit: <input name="limit" size="8">
&nbsp; Offset: <input name="offset" size="8">
&nbsp; (empty = all rows)</p>
<p><button type="submit">Generate view</button></p>
</form>
{{if .Error}}<p style="color:red">{{.Error}}</p>{{end}}
{{if .Table}}
<h2>Annotation view ({{len .Table.Rows}} rows)</h2>
<p><a href="{{.ExportBase}}&format=tsv">TSV</a> |
<a href="{{.ExportBase}}&format=csv">CSV</a> |
<a href="{{.ExportBase}}&format=json">JSON</a></p>
<table><tr>{{range .Table.Columns}}<th>{{.}}</th>{{end}}</tr>
{{range .Table.Rows}}<tr>{{range .}}<td>{{if .}}{{.}}{{else}}<span class="null">-</span>{{end}}</td>{{end}}</tr>{{end}}
</table>
{{end}}
</body></html>`))

type pageData struct {
	Sources    []*genmapper.Source
	StatsLine  string
	Table      *genmapper.Table
	Error      string
	ExportBase string
}

func (s *Server) pageData() pageData {
	d := pageData{Sources: s.sys.Sources()}
	if st, err := s.sys.Stats(); err == nil {
		d.StatsLine = st.String()
	}
	return d
}

func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.renderPage(w, s.pageData())
}

func (s *Server) renderPage(w http.ResponseWriter, d pageData) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := pageTmpl.Execute(w, d); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// parseTargetSpec parses one target specification of the form
// "[!]Name[ via A>B>C]".
func parseTargetSpec(spec string) genmapper.Target {
	t := genmapper.Target{}
	spec = strings.TrimSpace(spec)
	if strings.HasPrefix(spec, "!") {
		t.Negate = true
		spec = strings.TrimSpace(spec[1:])
	}
	name, via, hasVia := strings.Cut(spec, " via ")
	t.Source = strings.TrimSpace(name)
	if hasVia {
		for _, step := range strings.Split(via, ">") {
			if s := strings.TrimSpace(step); s != "" {
				t.Via = append(t.Via, s)
			}
		}
	}
	return t
}

// parseRowWindow reads the optional limit/offset form fields.
func parseRowWindow(r *http.Request, q *genmapper.Query) error {
	for _, f := range []struct {
		name string
		dst  *int
	}{{"limit", &q.Limit}, {"offset", &q.Offset}} {
		s := strings.TrimSpace(r.FormValue(f.name))
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return fmt.Errorf("%s must be a non-negative integer, got %q", f.name, s)
		}
		*f.dst = n
	}
	return nil
}

// parseQuerySpec turns form fields into a genmapper.Query.
func parseQuerySpec(r *http.Request) (genmapper.Query, error) {
	q := genmapper.Query{
		Source: strings.TrimSpace(r.FormValue("source")),
		Mode:   r.FormValue("mode"),
	}
	if q.Source == "" {
		return q, fmt.Errorf("no source selected")
	}
	for _, line := range strings.Split(r.FormValue("accessions"), "\n") {
		if acc := strings.TrimSpace(line); acc != "" {
			q.Accessions = append(q.Accessions, acc)
		}
	}
	for _, line := range strings.Split(r.FormValue("targets"), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		t := parseTargetSpec(line)
		if t.Source == "" {
			return q, fmt.Errorf("empty target name in %q", line)
		}
		q.Targets = append(q.Targets, t)
	}
	if len(q.Targets) == 0 {
		return q, fmt.Errorf("no targets specified")
	}
	if err := parseRowWindow(r, &q); err != nil {
		return q, err
	}
	return q, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Redirect(w, r, "/", http.StatusSeeOther)
		return
	}
	d := s.pageData()
	q, err := parseQuerySpec(r)
	if err != nil {
		d.Error = err.Error()
		s.renderPage(w, d)
		return
	}
	table, err := s.sys.AnnotationView(q)
	if err != nil {
		d.Error = err.Error()
		s.renderPage(w, d)
		return
	}
	d.Table = table
	d.ExportBase = exportURL(q)
	s.renderPage(w, d)
}

// exportURL serializes a query into GET parameters for the export links.
func exportURL(q genmapper.Query) string {
	var sb strings.Builder
	sb.WriteString("/export?source=")
	sb.WriteString(template.URLQueryEscaper(q.Source))
	sb.WriteString("&mode=")
	sb.WriteString(template.URLQueryEscaper(q.Mode))
	if len(q.Accessions) > 0 {
		sb.WriteString("&accessions=")
		sb.WriteString(template.URLQueryEscaper(strings.Join(q.Accessions, ",")))
	}
	for _, t := range q.Targets {
		spec := t.Source
		if t.Negate {
			spec = "!" + spec
		}
		if len(t.Via) > 0 {
			spec += " via " + strings.Join(t.Via, ">")
		}
		sb.WriteString("&target=")
		sb.WriteString(template.URLQueryEscaper(spec))
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, "&limit=%d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&sb, "&offset=%d", q.Offset)
	}
	return sb.String()
}

// exportFlushRows is how many rendered rows an export streams between
// flushes to the client.
const exportFlushRows = 512

// deferredHeaderWriter delays the export headers until the first payload
// byte: a query that fails validation (before any output) can still get a
// clean error status and plain-text body.
type deferredHeaderWriter struct {
	w          http.ResponseWriter
	setHeaders func()
	started    bool
	n          int
}

func (d *deferredHeaderWriter) Write(p []byte) (int, error) {
	if !d.started {
		d.setHeaders()
		d.started = true
	}
	d.n += len(p)
	return d.w.Write(p)
}

// handleExport streams the annotation view to the client row by row: the
// table is never materialized server-side, the response flushes every
// exportFlushRows rows, and result size is bounded by the network, not by
// server memory.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	q := genmapper.Query{
		Source: r.FormValue("source"),
		Mode:   r.FormValue("mode"),
	}
	if accs := r.FormValue("accessions"); accs != "" {
		for _, a := range strings.Split(accs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				q.Accessions = append(q.Accessions, a)
			}
		}
	}
	for _, spec := range r.URL.Query()["target"] {
		q.Targets = append(q.Targets, parseTargetSpec(spec))
	}
	if err := parseRowWindow(r, &q); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	format := strings.ToLower(r.FormValue("format"))
	if format != "csv" && format != "json" {
		format = "tsv"
	}
	dw := &deferredHeaderWriter{w: w, setHeaders: func() {
		switch format {
		case "csv":
			w.Header().Set("Content-Type", "text/csv")
			w.Header().Set("Content-Disposition", `attachment; filename="view.csv"`)
		case "json":
			w.Header().Set("Content-Type", "application/json")
		default:
			w.Header().Set("Content-Type", "text/tab-separated-values")
			w.Header().Set("Content-Disposition", `attachment; filename="view.tsv"`)
		}
	}}
	flusher, _ := w.(http.Flusher)
	flush := func() error {
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	if err := s.sys.StreamAnnotationView(q, dw, format, exportFlushRows, flush); err != nil {
		if dw.n == 0 {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		// Mid-stream errors are past the status line; the truncated body is
		// all we can signal.
		return
	}
}

func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	source := r.FormValue("source")
	accession := r.FormValue("accession")
	obj, err := s.sys.ObjectInfo(source, accession)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, map[string]any{
		"source":    source,
		"accession": obj.Accession,
		"text":      obj.Text,
		"hasNumber": obj.HasNumber,
		"number":    obj.Number,
	})
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	from, to, via := r.FormValue("from"), r.FormValue("to"), r.FormValue("via")
	var path []string
	var err error
	if via != "" {
		path, err = s.sys.FindPathVia(from, via, to)
	} else {
		path, err = s.sys.FindPath(from, to)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, map[string]any{"path": path})
}

func (s *Server) handleSources(w http.ResponseWriter, r *http.Request) {
	type srcJSON struct {
		Name      string `json:"name"`
		Content   string `json:"content"`
		Structure string `json:"structure"`
		Release   string `json:"release"`
	}
	var out []srcJSON
	for _, src := range s.sys.Sources() {
		out = append(out, srcJSON{
			Name: src.Name, Content: string(src.Content),
			Structure: string(src.Structure), Release: src.Release,
		})
	}
	writeJSON(w, out)
}

// handleExplain serves GET /api/explain?sql=...&format=json|text: the
// EXPLAIN document of the statement, never executing it. JSON documents
// are passed through verbatim so the byte-stable plan_version contract
// survives the HTTP surface; text renderings are wrapped in {"plan": ...}.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	sql := r.URL.Query().Get("sql")
	if sql == "" {
		http.Error(w, "missing sql parameter", http.StatusBadRequest)
		return
	}
	format := r.URL.Query().Get("format")
	out, err := s.sys.SQLExplain(sql, format)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if format == "text" {
		writeJSON(w, map[string]any{"plan": out})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.sys.Stats()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	cs := s.sys.CacheStats()
	writeJSON(w, map[string]any{
		"sources":      st.Sources,
		"objects":      st.Objects,
		"mappings":     st.Mappings,
		"associations": st.Associations,
		"cache": map[string]any{
			"hits":    cs.Hits,
			"misses":  cs.Misses,
			"entries": cs.Entries,
		},
		"sql_stmt_cache": s.sys.SQLStmtCacheStats(),
		"sql_plans":      s.sys.SQLPlanStats(),
		"sql_parallel":   s.sys.SQLParallelStats(),
		"sql_batch":      s.sys.SQLBatchStats(),
		"sql_mvcc":       s.sys.SQLMVCCStats(),
		"sql_partitions": s.sys.SQLPartitionStats(),
		"wal":            s.sys.SQLWALStats(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
