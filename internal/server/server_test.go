package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"genmapper"
	"genmapper/internal/eav"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	sys, err := genmapper.New()
	if err != nil {
		t.Fatal(err)
	}
	ll := eav.NewDataset(genmapper.SourceInfo{Name: "LocusLink", Content: "gene"})
	ll.Add("353", eav.TargetName, "", "adenine phosphoribosyltransferase")
	ll.Add("353", "Hugo", "APRT", "")
	ll.Add("353", "GO", "GO:0009116", "nucleoside metabolism")
	ll.Add("354", eav.TargetName, "", "locus two")
	ll.Add("354", "Hugo", "XYZ2", "")
	if _, err := sys.ImportDataset(ll, genmapper.ImportOptions{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(sys))
	t.Cleanup(ts.Close)
	return ts
}

func TestHomePage(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body := readBody(t, resp)
	if !strings.Contains(body, "Query specification") {
		t.Error("home page missing query form")
	}
	if !strings.Contains(body, "LocusLink") {
		t.Error("home page missing source list")
	}
	// Unknown path 404s.
	resp2, _ := http.Get(ts.URL + "/nope")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp2.StatusCode)
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestQueryFlow(t *testing.T) {
	ts := testServer(t)
	form := url.Values{
		"source":  {"LocusLink"},
		"mode":    {"OR"},
		"targets": {"Hugo\nGO"},
	}
	resp, err := http.PostForm(ts.URL+"/query", form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readBody(t, resp)
	if !strings.Contains(body, "Annotation view") {
		t.Fatalf("no view in response:\n%s", body)
	}
	if !strings.Contains(body, "APRT") || !strings.Contains(body, "GO:0009116") {
		t.Error("view missing annotation cells")
	}
}

func TestQueryNegation(t *testing.T) {
	ts := testServer(t)
	form := url.Values{
		"source":  {"LocusLink"},
		"mode":    {"AND"},
		"targets": {"!GO"},
	}
	resp, err := http.PostForm(ts.URL+"/query", form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readBody(t, resp)
	// 354 has no GO annotation: the negated view contains it, not 353.
	if !strings.Contains(body, "354") {
		t.Error("negated view missing 354")
	}
	if strings.Contains(body, ">353<") {
		t.Error("negated view should exclude 353")
	}
}

func TestQueryErrors(t *testing.T) {
	ts := testServer(t)
	// No targets.
	resp, err := http.PostForm(ts.URL+"/query", url.Values{"source": {"LocusLink"}})
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	resp.Body.Close()
	if !strings.Contains(body, "no targets") {
		t.Error("missing-targets error not shown")
	}
	// Unknown target source.
	resp, err = http.PostForm(ts.URL+"/query", url.Values{
		"source": {"LocusLink"}, "targets": {"NoSuch"},
	})
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	resp.Body.Close()
	if !strings.Contains(body, "unknown target source") {
		t.Error("unknown-target error not shown")
	}
	// GET redirects to home.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/query", nil)
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		t.Errorf("GET /query status = %d", resp.StatusCode)
	}
}

func TestExportFormats(t *testing.T) {
	ts := testServer(t)
	base := ts.URL + "/export?source=LocusLink&mode=OR&target=Hugo&target=GO"
	cases := []struct {
		format   string
		wantType string
		needle   string
	}{
		{"tsv", "text/tab-separated-values", "LocusLink\tHugo\tGO"},
		{"csv", "text/csv", "LocusLink,Hugo,GO"},
		{"json", "application/json", `"columns"`},
	}
	for _, c := range cases {
		resp, err := http.Get(base + "&format=" + c.format)
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, resp)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, c.wantType) {
			t.Errorf("%s content type = %q", c.format, ct)
		}
		if !strings.Contains(body, c.needle) {
			t.Errorf("%s export missing %q:\n%s", c.format, c.needle, body)
		}
	}
	// Bad query.
	resp, _ := http.Get(ts.URL + "/export?source=Nope&target=GO")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad export status = %d", resp.StatusCode)
	}
}

func TestObjectEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/object?source=LocusLink&accession=353")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["text"] != "adenine phosphoribosyltransferase" {
		t.Errorf("object = %v", got)
	}
	resp2, _ := http.Get(ts.URL + "/object?source=LocusLink&accession=999")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("missing object status = %d", resp2.StatusCode)
	}
}

func TestPathEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/path?from=Hugo&to=GO")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if strings.Join(got["path"], ">") != "Hugo>LocusLink>GO" {
		t.Errorf("path = %v", got["path"])
	}
	resp2, _ := http.Get(ts.URL + "/path?from=Hugo&to=Nowhere")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("no-path status = %d", resp2.StatusCode)
	}
}

func TestAPIEndpoints(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/api/sources")
	if err != nil {
		t.Fatal(err)
	}
	var sources []map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&sources); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sources) != 3 { // LocusLink, Hugo, GO
		t.Errorf("sources = %v", sources)
	}

	resp, err = http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["sources"] != float64(3) || stats["associations"] != float64(3) {
		t.Errorf("stats = %v", stats)
	}
	cache, ok := stats["cache"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing cache counters: %v", stats)
	}
	for _, k := range []string{"hits", "misses", "entries"} {
		if _, ok := cache[k].(float64); !ok {
			t.Errorf("cache stats missing %q: %v", k, cache)
		}
	}
	par, ok := stats["sql_parallel"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing sql_parallel block: %v", stats)
	}
	for _, k := range []string{"workers", "min_rows", "parallel_scans", "parallel_aggregates", "parallel_write_collects"} {
		if _, ok := par[k].(float64); !ok {
			t.Errorf("sql_parallel missing %q: %v", k, par)
		}
	}
	batch, ok := stats["sql_batch"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing sql_batch block: %v", stats)
	}
	if _, ok := batch["enabled"].(bool); !ok {
		t.Errorf("sql_batch missing %q: %v", "enabled", batch)
	}
	for _, k := range []string{"min_rows", "rows_per_batch", "batch_scans", "batch_aggregates"} {
		if _, ok := batch[k].(float64); !ok {
			t.Errorf("sql_batch missing %q: %v", k, batch)
		}
	}
	mvcc, ok := stats["sql_mvcc"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing sql_mvcc block: %v", stats)
	}
	if _, ok := mvcc["enabled"].(bool); !ok {
		t.Errorf("sql_mvcc missing %q: %v", "enabled", mvcc)
	}
	for _, k := range []string{"epoch", "active_snapshots", "commits", "aborts", "conflicts", "vacuum_runs", "versions_vacuumed", "latch_waits", "background_vacuums", "snapshots_aborted"} {
		if _, ok := mvcc[k].(float64); !ok {
			t.Errorf("sql_mvcc missing %q: %v", k, mvcc)
		}
	}
	parts, ok := stats["sql_partitions"].([]any)
	if !ok || len(parts) == 0 {
		t.Fatalf("stats missing sql_partitions: %v", stats)
	}
	first, ok := parts[0].(map[string]any)
	if !ok || first["table"] == "" || first["partitions"] == nil {
		t.Errorf("sql_partitions entry malformed: %v", parts[0])
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts := testServer(t)

	// JSON (the default) passes the versioned document through verbatim.
	resp, err := http.Get(ts.URL + "/api/explain?sql=" +
		url.QueryEscape("SELECT accession FROM object WHERE object_id = 1"))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if doc["plan_version"] != float64(1) || doc["statement"] != "SELECT" {
		t.Fatalf("explain doc = %v", doc)
	}
	access, ok := doc["access"].(map[string]any)
	if !ok || access["path"] != "index-eq" {
		t.Fatalf("explain access = %v", doc["access"])
	}

	// Text format wraps the rendering.
	resp, err = http.Get(ts.URL + "/api/explain?format=text&sql=" +
		url.QueryEscape("SELECT accession FROM object"))
	if err != nil {
		t.Fatal(err)
	}
	var wrapped map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&wrapped); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.HasPrefix(wrapped["plan"], "SELECT") {
		t.Fatalf("text plan = %q", wrapped["plan"])
	}

	// Errors: missing sql, bad SQL, bad format.
	for _, q := range []string{
		"/api/explain",
		"/api/explain?sql=" + url.QueryEscape("SELECT nope FROM nowhere"),
		"/api/explain?format=yaml&sql=" + url.QueryEscape("SELECT accession FROM object"),
	} {
		resp, err := http.Get(ts.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestStatsCacheCountersMove(t *testing.T) {
	ts := testServer(t)
	cacheStats := func() map[string]float64 {
		resp, err := http.Get(ts.URL + "/api/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var stats struct {
			Cache map[string]float64 `json:"cache"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		return stats.Cache
	}
	query := func() {
		resp, err := http.PostForm(ts.URL+"/query", url.Values{
			"source": {"LocusLink"}, "targets": {"Hugo"}, "mode": {"OR"},
		})
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	before := cacheStats()
	query()
	mid := cacheStats()
	if mid["misses"] <= before["misses"] {
		t.Fatalf("first query recorded no cache miss: %v -> %v", before, mid)
	}
	query()
	after := cacheStats()
	if after["hits"] <= mid["hits"] {
		t.Fatalf("repeated query recorded no cache hit: %v -> %v", mid, after)
	}
	if after["misses"] != mid["misses"] {
		t.Fatalf("repeated query missed the cache: %v -> %v", mid, after)
	}
}

func TestExportLimitOffset(t *testing.T) {
	ts := testServer(t)
	get := func(params string) (int, []string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/export?source=LocusLink&mode=OR&target=Hugo&format=tsv" + params)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body := readBody(t, resp)
		return resp.StatusCode, strings.Split(strings.TrimRight(body, "\n"), "\n")
	}

	status, all := get("")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	dataRows := len(all) - 1 // minus header
	if dataRows < 2 {
		t.Fatalf("export has %d data rows, want >= 2", dataRows)
	}

	status, limited := get("&limit=1")
	if status != http.StatusOK || len(limited)-1 != 1 {
		t.Fatalf("limit=1: status %d rows %d", status, len(limited)-1)
	}
	if limited[1] != all[1] {
		t.Errorf("limit=1 first row %q, want %q", limited[1], all[1])
	}

	status, shifted := get("&limit=1&offset=1")
	if status != http.StatusOK || len(shifted)-1 != 1 {
		t.Fatalf("limit=1&offset=1: status %d rows %d", status, len(shifted)-1)
	}
	if shifted[1] != all[2] {
		t.Errorf("offset=1 first row %q, want %q", shifted[1], all[2])
	}

	// Invalid window parameters get a clean 400, not a broken stream.
	status, _ = get("&limit=-3")
	if status != http.StatusBadRequest {
		t.Errorf("negative limit status = %d, want 400", status)
	}
}

func TestExportErrorBeforeStream(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/export?source=NoSuchSource&target=Hugo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); strings.Contains(ct, "tab-separated") {
		t.Errorf("error response carries export content type %q", ct)
	}
}

func TestQueryFormLimit(t *testing.T) {
	ts := testServer(t)
	form := url.Values{
		"source":  {"LocusLink"},
		"mode":    {"OR"},
		"targets": {"Hugo"},
		"limit":   {"1"},
	}
	resp, err := http.PostForm(ts.URL+"/query", form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readBody(t, resp)
	if !strings.Contains(body, "Annotation view (1 rows)") {
		t.Errorf("limited query did not render 1 row:\n%s", body)
	}
	// Export links carry the window through.
	if !strings.Contains(body, "limit=1") {
		t.Error("export link does not carry limit")
	}
}
