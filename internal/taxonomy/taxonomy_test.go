package taxonomy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds:
//
//	  1
//	 / \
//	2   3
//	 \ / \
//	  4   5
//	  |
//	  6
func diamond() *DAG {
	return NewDAG([]Edge{
		{Child: 2, Parent: 1},
		{Child: 3, Parent: 1},
		{Child: 4, Parent: 2},
		{Child: 4, Parent: 3},
		{Child: 5, Parent: 3},
		{Child: 6, Parent: 4},
	})
}

func TestDAGBasics(t *testing.T) {
	d := diamond()
	if d.Len() != 6 {
		t.Fatalf("Len = %d", d.Len())
	}
	if roots := d.Roots(); len(roots) != 1 || roots[0] != 1 {
		t.Errorf("Roots = %v", roots)
	}
	if leaves := d.Leaves(); len(leaves) != 2 || leaves[0] != 5 || leaves[1] != 6 {
		t.Errorf("Leaves = %v", leaves)
	}
	if ps := d.Parents(4); len(ps) != 2 {
		t.Errorf("Parents(4) = %v", ps)
	}
	if cs := d.Children(3); len(cs) != 2 {
		t.Errorf("Children(3) = %v", cs)
	}
}

func TestDuplicateEdgesCollapse(t *testing.T) {
	d := NewDAG([]Edge{{Child: 2, Parent: 1}, {Child: 2, Parent: 1}})
	if len(d.Parents(2)) != 1 {
		t.Fatalf("duplicate edge not collapsed: %v", d.Parents(2))
	}
}

func TestAddNode(t *testing.T) {
	d := diamond()
	d.AddNode(99)
	if d.Len() != 7 {
		t.Fatalf("Len after AddNode = %d", d.Len())
	}
	if desc := d.Descendants(99); len(desc) != 0 {
		t.Errorf("isolated node has descendants %v", desc)
	}
}

func TestValidateAcceptsDAG(t *testing.T) {
	if err := diamond().Validate(); err != nil {
		t.Fatalf("valid DAG rejected: %v", err)
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	d := NewDAG([]Edge{
		{Child: 2, Parent: 1},
		{Child: 3, Parent: 2},
		{Child: 1, Parent: 3}, // closes the loop
	})
	if err := d.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
	if _, err := d.TopoOrder(); err == nil {
		t.Fatal("TopoOrder accepted a cycle")
	}
	if _, err := d.SubsumedClosure(); err == nil {
		t.Fatal("SubsumedClosure accepted a cycle")
	}
}

func TestValidateSelfLoop(t *testing.T) {
	d := NewDAG([]Edge{{Child: 1, Parent: 1}})
	if err := d.Validate(); err == nil {
		t.Fatal("self loop not detected")
	}
}

func TestTopoOrder(t *testing.T) {
	d := diamond()
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int64]int)
	for i, n := range order {
		pos[n] = i
	}
	for _, e := range []Edge{{2, 1}, {3, 1}, {4, 2}, {4, 3}, {5, 3}, {6, 4}} {
		if pos[e.Parent] > pos[e.Child] {
			t.Errorf("parent %d after child %d", e.Parent, e.Child)
		}
	}
}

func TestDepth(t *testing.T) {
	d := diamond()
	depth, err := d.Depth()
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]int{1: 0, 2: 1, 3: 1, 4: 2, 5: 2, 6: 3}
	for n, w := range want {
		if depth[n] != w {
			t.Errorf("depth[%d] = %d, want %d", n, depth[n], w)
		}
	}
}

func TestDescendantsAncestors(t *testing.T) {
	d := diamond()
	if got := d.Descendants(1); len(got) != 5 {
		t.Errorf("Descendants(1) = %v", got)
	}
	if got := d.Descendants(3); len(got) != 3 { // 4, 5, 6
		t.Errorf("Descendants(3) = %v", got)
	}
	if got := d.Descendants(6); len(got) != 0 {
		t.Errorf("Descendants(6) = %v", got)
	}
	if got := d.Ancestors(6); len(got) != 4 { // 4, 2, 3, 1
		t.Errorf("Ancestors(6) = %v", got)
	}
	if got := d.Ancestors(1); len(got) != 0 {
		t.Errorf("Ancestors(1) = %v", got)
	}
}

func TestSubsumedClosure(t *testing.T) {
	d := diamond()
	closure, err := d.SubsumedClosure()
	if err != nil {
		t.Fatal(err)
	}
	if got := closure[1]; len(got) != 5 {
		t.Errorf("closure[1] = %v", got)
	}
	if got := closure[4]; len(got) != 1 || got[0] != 6 {
		t.Errorf("closure[4] = %v", got)
	}
	if got := closure[6]; len(got) != 0 {
		t.Errorf("closure[6] = %v", got)
	}
}

// TestSubsumedClosureMatchesDFS cross-checks the memoized closure against
// the straightforward per-node DFS on random DAGs.
func TestSubsumedClosureMatchesDFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		var edges []Edge
		// Edges only point from higher to lower IDs: acyclic by construction.
		for c := int64(1); c < int64(n); c++ {
			for p := int64(0); p < c; p++ {
				if rng.Intn(4) == 0 {
					edges = append(edges, Edge{Child: c, Parent: p})
				}
			}
		}
		d := NewDAG(edges)
		for i := int64(0); i < int64(n); i++ {
			d.AddNode(i)
		}
		closure, err := d.SubsumedClosure()
		if err != nil {
			return false
		}
		for _, node := range d.Nodes() {
			want := d.Descendants(node)
			got := closure[node]
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSubsumedEdges(t *testing.T) {
	d := diamond()
	edges, err := d.SubsumedEdges()
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 subsumes 5 nodes, 2 subsumes 2 (4,6), 3 subsumes 3 (4,5,6),
	// 4 subsumes 1 (6) -> total 11.
	if len(edges) != 11 {
		t.Fatalf("SubsumedEdges = %d, want 11", len(edges))
	}
	for _, e := range edges {
		if e.Child == e.Parent {
			t.Errorf("self-subsumption %v", e)
		}
	}
}

func TestRollupCounts(t *testing.T) {
	d := diamond()
	annotations := map[int64][]int64{
		5: {100, 101},
		6: {100, 102},
		3: {103},
	}
	counts, err := d.RollupCounts(annotations)
	if err != nil {
		t.Fatal(err)
	}
	// Node 6: {100,102} = 2; node 4: inherits 6 = 2; node 5: 2.
	// Node 3: {103} + desc {100,101,102} = 4.
	// Node 2: via 4 = 2. Node 1: all = 4.
	want := map[int64]int{1: 4, 2: 2, 3: 4, 4: 2, 5: 2, 6: 2}
	for n, w := range want {
		if counts[n] != w {
			t.Errorf("rollup[%d] = %d, want %d", n, counts[n], w)
		}
	}
}

func TestRollupDistinctness(t *testing.T) {
	// The same object annotated at two sibling terms counts once at the
	// shared ancestor.
	d := NewDAG([]Edge{{Child: 2, Parent: 1}, {Child: 3, Parent: 1}})
	counts, err := d.RollupCounts(map[int64][]int64{2: {7}, 3: {7}})
	if err != nil {
		t.Fatal(err)
	}
	if counts[1] != 1 {
		t.Fatalf("rollup[1] = %d, want 1 (distinct objects)", counts[1])
	}
}

func TestDeepChainNoStackOverflow(t *testing.T) {
	// 100k-deep chain: Validate and closure must not recurse per level.
	const n = 100000
	edges := make([]Edge, 0, n-1)
	for i := int64(1); i < n; i++ {
		edges = append(edges, Edge{Child: i, Parent: i - 1})
	}
	d := NewDAG(edges)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	depth, err := d.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if depth[n-1] != n-1 {
		t.Fatalf("depth = %d", depth[n-1])
	}
}
