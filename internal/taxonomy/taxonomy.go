// Package taxonomy implements the intra-source structure handling of
// GenMapper: IS_A term hierarchies (directed acyclic graphs), the derived
// Subsumed relationship (transitive closure over IS_A, paper §3), and the
// rollup counting used by functional profiling (§5.2).
//
// Nodes are identified by int64 IDs so the package works directly with GAM
// object IDs without depending on the gam package.
package taxonomy

import (
	"fmt"
	"sort"
)

// Edge is one IS_A link: Child IS_A Parent.
type Edge struct {
	Child  int64
	Parent int64
}

// DAG is an IS_A hierarchy. Multiple parents are allowed (GO terms may
// specialize several terms); cycles are rejected by Validate.
type DAG struct {
	parents  map[int64][]int64
	children map[int64][]int64
	nodes    map[int64]bool
}

// NewDAG builds a DAG from IS_A edges. Duplicate edges collapse.
func NewDAG(edges []Edge) *DAG {
	d := &DAG{
		parents:  make(map[int64][]int64),
		children: make(map[int64][]int64),
		nodes:    make(map[int64]bool),
	}
	seen := make(map[Edge]bool, len(edges))
	for _, e := range edges {
		if seen[e] {
			continue
		}
		seen[e] = true
		d.nodes[e.Child] = true
		d.nodes[e.Parent] = true
		d.parents[e.Child] = append(d.parents[e.Child], e.Parent)
		d.children[e.Parent] = append(d.children[e.Parent], e.Child)
	}
	return d
}

// AddNode registers an isolated node (a term without IS_A links).
func (d *DAG) AddNode(id int64) { d.nodes[id] = true }

// Len returns the number of nodes.
func (d *DAG) Len() int { return len(d.nodes) }

// Nodes returns all node IDs in ascending order.
func (d *DAG) Nodes() []int64 {
	out := make([]int64, 0, len(d.nodes))
	for n := range d.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Parents returns the direct parents of a node.
func (d *DAG) Parents(id int64) []int64 { return d.parents[id] }

// Children returns the direct children of a node.
func (d *DAG) Children(id int64) []int64 { return d.children[id] }

// Roots returns nodes without parents, in ascending order.
func (d *DAG) Roots() []int64 {
	var out []int64
	for n := range d.nodes {
		if len(d.parents[n]) == 0 {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Leaves returns nodes without children, in ascending order.
func (d *DAG) Leaves() []int64 {
	var out []int64
	for n := range d.nodes {
		if len(d.children[n]) == 0 {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate reports an error when the IS_A structure contains a cycle.
// Taxonomies from real sources occasionally ship broken releases; the
// importer surfaces this instead of looping forever.
func (d *DAG) Validate() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int64]int, len(d.nodes))
	// Iterative DFS with an explicit stack to survive deep hierarchies.
	type frame struct {
		node int64
		next int
	}
	for _, start := range d.Nodes() {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: start}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			kids := d.parents[f.node] // walk child->parent direction
			if f.next < len(kids) {
				next := kids[f.next]
				f.next++
				switch color[next] {
				case gray:
					return fmt.Errorf("taxonomy: IS_A cycle through node %d", next)
				case white:
					color[next] = gray
					stack = append(stack, frame{node: next})
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

// TopoOrder returns the nodes in a topological order where parents precede
// children. It fails on cyclic input.
func (d *DAG) TopoOrder() ([]int64, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	indeg := make(map[int64]int, len(d.nodes))
	for n := range d.nodes {
		indeg[n] = len(d.parents[n])
	}
	queue := d.Roots()
	out := make([]int64, 0, len(d.nodes))
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		kids := append([]int64(nil), d.children[n]...)
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		for _, c := range kids {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(out) != len(d.nodes) {
		return nil, fmt.Errorf("taxonomy: topological sort incomplete (cycle)")
	}
	return out, nil
}

// Depth returns the length of the longest root-to-node path for every
// node (roots have depth 0).
func (d *DAG) Depth() (map[int64]int, error) {
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	depth := make(map[int64]int, len(order))
	for _, n := range order {
		best := 0
		for _, p := range d.parents[n] {
			if depth[p]+1 > best {
				best = depth[p] + 1
			}
		}
		depth[n] = best
	}
	return depth, nil
}

// Descendants returns the transitive descendants of id (excluding id
// itself), in ascending order. This is the object set of the node's
// Subsumed associations.
func (d *DAG) Descendants(id int64) []int64 {
	seen := make(map[int64]bool)
	stack := append([]int64(nil), d.children[id]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, d.children[n]...)
	}
	out := make([]int64, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ancestors returns the transitive ancestors of id (excluding id itself),
// in ascending order.
func (d *DAG) Ancestors(id int64) []int64 {
	seen := make(map[int64]bool)
	stack := append([]int64(nil), d.parents[id]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, d.parents[n]...)
	}
	out := make([]int64, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SubsumedClosure computes, for every node, its full descendant set — the
// Subsumed relationship of the paper. The result maps each term to the
// terms it subsumes (excluding itself). Shared sub-DAGs are computed once
// per node via memoized DFS over a topological order.
func (d *DAG) SubsumedClosure() (map[int64][]int64, error) {
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	closure := make(map[int64]map[int64]bool, len(order))
	// Process in reverse topological order so children are done first.
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		set := make(map[int64]bool)
		for _, c := range d.children[n] {
			set[c] = true
			for desc := range closure[c] {
				set[desc] = true
			}
		}
		closure[n] = set
	}
	out := make(map[int64][]int64, len(closure))
	for n, set := range closure {
		ids := make([]int64, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out[n] = ids
	}
	return out, nil
}

// SubsumedEdges flattens the closure into (term, subsumedTerm) pairs,
// which the importer materializes as a Subsumed mapping.
func (d *DAG) SubsumedEdges() ([]Edge, error) {
	closure, err := d.SubsumedClosure()
	if err != nil {
		return nil, err
	}
	var out []Edge
	for _, n := range d.Nodes() {
		for _, desc := range closure[n] {
			out = append(out, Edge{Child: desc, Parent: n})
		}
	}
	return out, nil
}

// RollupCounts aggregates per-term object counts over the hierarchy: a
// term's rolled-up count is the number of distinct objects annotated to
// the term itself or to any subsumed (descendant) term. This is the
// statistic functional profiling runs over the entire GO taxonomy (§5.2).
//
// annotations maps term -> annotated object IDs.
func (d *DAG) RollupCounts(annotations map[int64][]int64) (map[int64]int, error) {
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	// Accumulate distinct object sets bottom-up. Sets are shared where a
	// node has a single child chain, so copy on write.
	sets := make(map[int64]map[int64]bool, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		set := make(map[int64]bool)
		for _, obj := range annotations[n] {
			set[obj] = true
		}
		for _, c := range d.children[n] {
			for obj := range sets[c] {
				set[obj] = true
			}
		}
		sets[n] = set
	}
	counts := make(map[int64]int, len(sets))
	for n, set := range sets {
		counts[n] = len(set)
	}
	return counts, nil
}
