package eav

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sampleDataset() *Dataset {
	// The paper's Table 1: parsed annotation data for LocusLink locus 353.
	d := NewDataset(SourceInfo{
		Name: "LocusLink", Content: "gene", Structure: "flat",
		Release: "2003-10", Date: "2004-01-15",
	})
	d.Add("353", TargetName, "", "adenine phosphoribosyltransferase")
	d.Add("353", "Hugo", "APRT", "adenine phosphoribosyltransferase")
	d.Add("353", "Location", "16q24", "")
	d.Add("353", "Enzyme", "2.4.2.7", "")
	d.Add("353", "GO", "GO:0009116", "nucleoside metabolism")
	d.Add("354", TargetName, "", "another locus")
	d.Add("354", "GO", "GO:0016740", "transferase activity")
	return d
}

func TestDatasetBasics(t *testing.T) {
	d := sampleDataset()
	if d.Len() != 7 {
		t.Fatalf("Len = %d, want 7", d.Len())
	}
	accs := d.Accessions()
	if len(accs) != 2 || accs[0] != "353" || accs[1] != "354" {
		t.Errorf("Accessions = %v", accs)
	}
	targets := d.Targets()
	want := []string{"Enzyme", "GO", "Hugo", "Location"}
	if strings.Join(targets, ",") != strings.Join(want, ",") {
		t.Errorf("Targets = %v, want %v (pseudo-targets excluded)", targets, want)
	}
}

func TestByAccession(t *testing.T) {
	d := sampleDataset()
	keys, groups := d.ByAccession()
	if len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}
	if len(groups["353"]) != 5 || len(groups["354"]) != 2 {
		t.Errorf("group sizes = %d, %d", len(groups["353"]), len(groups["354"]))
	}
	if groups["353"][1].Target != "Hugo" {
		t.Errorf("record order not preserved: %v", groups["353"][1])
	}
}

func TestIsPseudoTarget(t *testing.T) {
	for _, p := range []string{TargetName, TargetIsA, TargetContains, TargetNumber} {
		if !IsPseudoTarget(p) {
			t.Errorf("%s should be a pseudo-target", p)
		}
	}
	if IsPseudoTarget("GO") {
		t.Error("GO is a real target")
	}
}

func TestValidate(t *testing.T) {
	d := sampleDataset()
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	bad := NewDataset(SourceInfo{})
	if err := bad.Validate(); err == nil {
		t.Error("missing source name not caught")
	}
	d2 := NewDataset(SourceInfo{Name: "X"})
	d2.Add("", "GO", "GO:1", "")
	if err := d2.Validate(); err == nil {
		t.Error("empty accession not caught")
	}
	d3 := NewDataset(SourceInfo{Name: "X"})
	d3.Add("a", "", "b", "")
	if err := d3.Validate(); err == nil {
		t.Error("empty target not caught")
	}
	d4 := NewDataset(SourceInfo{Name: "X"})
	d4.Add("a", "GO", "", "")
	if err := d4.Validate(); err == nil {
		t.Error("missing target accession not caught")
	}
	d5 := NewDataset(SourceInfo{Name: "X"})
	d5.Add("a", TargetNumber, "", "")
	if err := d5.Validate(); err == nil {
		t.Error("NUMBER record without value not caught")
	}
}

func TestTSVRoundTrip(t *testing.T) {
	d := sampleDataset()
	d.AddEvidence("353", "Unigene", "Hs.28914", "", 0.83)
	var buf bytes.Buffer
	if err := d.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != d.Source {
		t.Errorf("source info = %+v, want %+v", got.Source, d.Source)
	}
	if len(got.Records) != len(d.Records) {
		t.Fatalf("records = %d, want %d", len(got.Records), len(d.Records))
	}
	for i := range d.Records {
		if got.Records[i] != d.Records[i] {
			t.Errorf("record %d = %+v, want %+v", i, got.Records[i], d.Records[i])
		}
	}
}

func TestTSVEscaping(t *testing.T) {
	d := NewDataset(SourceInfo{Name: "Weird\tSource", Release: "a\\b"})
	d.Add("acc\t1", "GO", "GO:1", "text with\nnewline and\ttab")
	var buf bytes.Buffer
	if err := d.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Source.Name != "Weird\tSource" || got.Source.Release != "a\\b" {
		t.Errorf("escaped source info = %+v", got.Source)
	}
	if got.Records[0].Accession != "acc\t1" {
		t.Errorf("accession = %q", got.Records[0].Accession)
	}
	if got.Records[0].Text != "text with\nnewline and\ttab" {
		t.Errorf("text = %q", got.Records[0].Text)
	}
}

func TestTSVErrors(t *testing.T) {
	cases := []string{
		"",
		"not a header\n",
		"#source\tonly\ttwo\n",
		"#source\tX\tgene\tflat\tr\td\nbad line with too few fields\n",
		"#source\tX\tgene\tflat\tr\nmissing header field\n",
	}
	for _, in := range cases {
		if _, err := ReadTSV(strings.NewReader(in)); err == nil {
			t.Errorf("expected error for input %q", in)
		}
	}
}

func TestTSVBadEvidence(t *testing.T) {
	in := "#source\tX\tgene\tflat\tr\td\nacc\tGO\tGO:1\t\tnot-a-number\n"
	if _, err := ReadTSV(strings.NewReader(in)); err == nil {
		t.Error("expected error for bad evidence field")
	}
}

func TestTSVSkipsBlankLines(t *testing.T) {
	in := "#source\tX\tgene\tflat\tr\td\n\nacc\tGO\tGO:1\t\t\n\n"
	d, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestEscapeRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		// Fields cannot contain raw \r via the scanner, skip them.
		if strings.ContainsRune(s, '\r') {
			return true
		}
		return unescapeField(escapeField(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDatasetTSVRoundTripProperty(t *testing.T) {
	f := func(accs, targets []string) bool {
		d := NewDataset(SourceInfo{Name: "P", Content: "gene", Structure: "flat"})
		for i := range accs {
			a := strings.ReplaceAll(accs[i], "\r", "")
			if a == "" {
				a = "acc"
			}
			tgt := "T"
			if i < len(targets) && targets[i] != "" {
				tgt = strings.ReplaceAll(targets[i], "\r", "")
				if tgt == "" {
					tgt = "T"
				}
			}
			d.Add(a, tgt, "x", "")
		}
		var buf bytes.Buffer
		if err := d.WriteTSV(&buf); err != nil {
			return false
		}
		got, err := ReadTSV(&buf)
		if err != nil {
			return false
		}
		if len(got.Records) != len(d.Records) {
			return false
		}
		for i := range d.Records {
			if got.Records[i] != d.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
