// Package eav implements the staging format produced by the Parse step of
// GenMapper's two-phase import pipeline (paper §4.1, Table 1).
//
// Every parser, regardless of the source's native format, emits a Dataset:
// a flat list of (accession, target, target-accession, text) records plus
// audit information about the source. The Import step (package importer)
// consumes Datasets and performs the generic EAV-to-GAM transformation.
package eav

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Pseudo-target names carrying object metadata and intra-source structure
// rather than cross-references. All other target values name an external
// source being cross-referenced.
const (
	// TargetName carries the object's own descriptive text
	// (e.g. "APRT" -> "adenine phosphoribosyltransferase").
	TargetName = "NAME"
	// TargetIsA links a term to its parent term within the same source
	// (taxonomies such as GeneOntology or Enzyme).
	TargetIsA = "IS_A"
	// TargetContains links a source partition to a member object, e.g.
	// GO's "Biological Process" sub-taxonomy containing a term.
	TargetContains = "CONTAINS"
	// TargetNumber carries a numeric representation of the object.
	TargetNumber = "NUMBER"
)

// Record is one parsed annotation: the source object identified by
// Accession is related to TargetAccession in the Target source. Text
// carries optional descriptive text (Table 1's rightmost column).
// Evidence, when non-zero, records the computed plausibility of the
// association (used for Similarity mappings).
type Record struct {
	Accession       string
	Target          string
	TargetAccession string
	Text            string
	Evidence        float64
}

// SourceInfo identifies and audits the source a Dataset came from. Name and
// Release participate in duplicate elimination at the source level (§4.1).
type SourceInfo struct {
	Name      string
	Content   string // gene | protein | other
	Structure string // flat | network
	Release   string
	Date      string // import/download date, audit info
}

// Dataset is the parse output for one source: audit info plus records.
type Dataset struct {
	Source  SourceInfo
	Records []Record
}

// NewDataset creates an empty dataset for the given source.
func NewDataset(info SourceInfo) *Dataset {
	return &Dataset{Source: info}
}

// Add appends one record.
func (d *Dataset) Add(accession, target, targetAccession, text string) {
	d.Records = append(d.Records, Record{
		Accession: accession, Target: target, TargetAccession: targetAccession, Text: text,
	})
}

// AddEvidence appends one record carrying an evidence value.
func (d *Dataset) AddEvidence(accession, target, targetAccession, text string, evidence float64) {
	d.Records = append(d.Records, Record{
		Accession: accession, Target: target, TargetAccession: targetAccession,
		Text: text, Evidence: evidence,
	})
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.Records) }

// Accessions returns the distinct object accessions in first-seen order.
func (d *Dataset) Accessions() []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range d.Records {
		if !seen[r.Accession] {
			seen[r.Accession] = true
			out = append(out, r.Accession)
		}
	}
	return out
}

// Targets returns the distinct target names in sorted order, excluding
// pseudo-targets.
func (d *Dataset) Targets() []string {
	seen := make(map[string]bool)
	for _, r := range d.Records {
		if IsPseudoTarget(r.Target) {
			continue
		}
		seen[r.Target] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// ByAccession groups records by object accession, preserving record order
// within each group. The returned keys follow first-seen order.
func (d *Dataset) ByAccession() ([]string, map[string][]Record) {
	groups := make(map[string][]Record)
	keys := d.Accessions()
	for _, r := range d.Records {
		groups[r.Accession] = append(groups[r.Accession], r)
	}
	return keys, groups
}

// IsPseudoTarget reports whether the target name is one of the reserved
// metadata/structure targets rather than an external source reference.
func IsPseudoTarget(target string) bool {
	switch target {
	case TargetName, TargetIsA, TargetContains, TargetNumber:
		return true
	}
	return false
}

// Validate checks structural well-formedness: non-empty accessions and
// targets, and target accessions present where required. It returns the
// first problem found.
func (d *Dataset) Validate() error {
	if d.Source.Name == "" {
		return fmt.Errorf("eav: dataset has no source name")
	}
	for i, r := range d.Records {
		if r.Accession == "" {
			return fmt.Errorf("eav: record %d of %s: empty accession", i, d.Source.Name)
		}
		if r.Target == "" {
			return fmt.Errorf("eav: record %d of %s: empty target", i, d.Source.Name)
		}
		switch r.Target {
		case TargetName:
			// Text-only record; target accession unused.
		case TargetNumber:
			if r.Text == "" {
				return fmt.Errorf("eav: record %d of %s: NUMBER record without value", i, d.Source.Name)
			}
		default:
			if r.TargetAccession == "" {
				return fmt.Errorf("eav: record %d of %s: target %s without accession", i, d.Source.Name, r.Target)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// TSV serialization: the interchange format between gmgen/parsers and
// gmimport. Header line `#source\tname\tcontent\tstructure\trelease\tdate`
// followed by one record per line.

// WriteTSV serializes the dataset.
func (d *Dataset) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#source\t%s\t%s\t%s\t%s\t%s\n",
		escapeField(d.Source.Name), escapeField(d.Source.Content),
		escapeField(d.Source.Structure), escapeField(d.Source.Release),
		escapeField(d.Source.Date))
	for _, r := range d.Records {
		ev := ""
		if r.Evidence != 0 {
			ev = fmt.Sprintf("%g", r.Evidence)
		}
		fmt.Fprintf(bw, "%s\t%s\t%s\t%s\t%s\n",
			escapeField(r.Accession), escapeField(r.Target),
			escapeField(r.TargetAccession), escapeField(r.Text), ev)
	}
	return bw.Flush()
}

// ReadTSV parses a dataset previously written by WriteTSV.
func ReadTSV(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("eav: read header: %w", err)
		}
		return nil, fmt.Errorf("eav: empty input")
	}
	header := strings.Split(sc.Text(), "\t")
	if len(header) != 6 || header[0] != "#source" {
		return nil, fmt.Errorf("eav: bad header line %q", sc.Text())
	}
	d := NewDataset(SourceInfo{
		Name:      unescapeField(header[1]),
		Content:   unescapeField(header[2]),
		Structure: unescapeField(header[3]),
		Release:   unescapeField(header[4]),
		Date:      unescapeField(header[5]),
	})
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 5 {
			return nil, fmt.Errorf("eav: line %d: expected 5 fields, got %d", lineNo, len(parts))
		}
		rec := Record{
			Accession:       unescapeField(parts[0]),
			Target:          unescapeField(parts[1]),
			TargetAccession: unescapeField(parts[2]),
			Text:            unescapeField(parts[3]),
		}
		if parts[4] != "" {
			if _, err := fmt.Sscanf(parts[4], "%g", &rec.Evidence); err != nil {
				return nil, fmt.Errorf("eav: line %d: bad evidence %q", lineNo, parts[4])
			}
		}
		d.Records = append(d.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("eav: read: %w", err)
	}
	return d, nil
}

func escapeField(s string) string {
	if !strings.ContainsAny(s, "\t\n\\") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\t", `\t`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

func unescapeField(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i == len(s)-1 {
			sb.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 't':
			sb.WriteByte('\t')
		case 'n':
			sb.WriteByte('\n')
		case '\\':
			sb.WriteByte('\\')
		default:
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}
