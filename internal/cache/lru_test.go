package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestLRUBasicPutGet(t *testing.T) {
	l := New[string, int](3)
	l.Put("a", 1)
	l.Put("b", 2)
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if _, ok := l.Get("missing"); ok {
		t.Fatal("Get(missing) reported present")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	l.Put("a", 10) // replace keeps one entry
	if v, _ := l.Get("a"); v != 10 {
		t.Fatalf("replaced value = %v, want 10", v)
	}
	if l.Len() != 2 {
		t.Fatalf("Len after replace = %d, want 2", l.Len())
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	l := New[int, int](3)
	var evicted []int
	l.OnEvict(func(k, _ int) { evicted = append(evicted, k) })
	l.Put(1, 1)
	l.Put(2, 2)
	l.Put(3, 3)
	l.Get(1)    // 1 is now most recent; 2 is least
	l.Put(4, 4) // evicts 2
	if _, ok := l.Peek(2); ok {
		t.Fatal("2 should have been evicted")
	}
	if fmt.Sprint(evicted) != "[2]" {
		t.Fatalf("evicted = %v, want [2]", evicted)
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := l.Peek(k); !ok {
			t.Fatalf("%d missing after eviction", k)
		}
	}
}

func TestLRUTouchAndPeek(t *testing.T) {
	l := New[int, string](2)
	l.Put(1, "a")
	l.Put(2, "b")
	if !l.Touch(1) {
		t.Fatal("Touch(1) = false")
	}
	if l.Touch(9) {
		t.Fatal("Touch(9) = true")
	}
	l.Peek(2)     // peek must NOT promote 2
	l.Put(3, "c") // evicts 2 (LRU after touch of 1)
	if _, ok := l.Peek(2); ok {
		t.Fatal("2 should have been evicted (Peek promoted it?)")
	}
	if _, ok := l.Peek(1); !ok {
		t.Fatal("1 should have survived (Touch did not promote it?)")
	}
}

func TestLRUDelete(t *testing.T) {
	l := New[int, int](2)
	called := false
	l.OnEvict(func(int, int) { called = true })
	l.Put(1, 1)
	if !l.Delete(1) || l.Delete(1) {
		t.Fatal("Delete semantics wrong")
	}
	if called {
		t.Fatal("Delete must not invoke OnEvict")
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d after delete", l.Len())
	}
}

func TestLRUSetCapacityShrinks(t *testing.T) {
	l := New[int, int](4)
	for i := 1; i <= 4; i++ {
		l.Put(i, i)
	}
	l.Get(1)
	l.SetCapacity(2)
	if l.Len() != 2 {
		t.Fatalf("Len = %d after shrink, want 2", l.Len())
	}
	// Most recent two are 1 (just got) and 4 (last put).
	for _, k := range []int{1, 4} {
		if _, ok := l.Peek(k); !ok {
			t.Fatalf("%d missing after shrink", k)
		}
	}
}

func TestLRUZeroCapacityStoresNothing(t *testing.T) {
	l := New[int, int](0)
	l.Put(1, 1)
	if l.Len() != 0 {
		t.Fatalf("zero-capacity cache stored %d entries", l.Len())
	}
}

func TestLRURangeOrder(t *testing.T) {
	l := New[int, int](3)
	l.Put(1, 1)
	l.Put(2, 2)
	l.Put(3, 3)
	l.Get(1)
	var order []int
	l.Range(func(k, _ int) bool {
		order = append(order, k)
		return true
	})
	if fmt.Sprint(order) != "[1 3 2]" {
		t.Fatalf("Range order = %v, want [1 3 2]", order)
	}
}

// TestLRUEvictionDuringConcurrentGet hammers a small LRU from many
// goroutines under the documented external-mutex discipline (the
// statement cache and the mapping executor both guard theirs with one),
// so capacity evictions constantly race with Gets of the same keys. Run
// under -race it proves the discipline suffices, and the invariant
// checks prove eviction bookkeeping never loses or duplicates entries.
func TestLRUEvictionDuringConcurrentGet(t *testing.T) {
	const capacity = 8
	const keys = 64
	const goroutines = 8
	const opsPerG = 5000

	l := New[int, int](capacity)
	var mu sync.Mutex
	evictions := make(map[int]int)
	l.OnEvict(func(k, _ int) { evictions[k]++ })

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < opsPerG; i++ {
				k := rng.Intn(keys)
				mu.Lock()
				if v, ok := l.Get(k); ok {
					if v != k*10 {
						mu.Unlock()
						t.Errorf("Get(%d) = %d, want %d", k, v, k*10)
						return
					}
				} else {
					l.Put(k, k*10) // miss -> insert, evicting the LRU entry
				}
				if l.Len() > capacity {
					mu.Unlock()
					t.Errorf("Len %d exceeds capacity %d", l.Len(), capacity)
					return
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if l.Len() != capacity {
		t.Fatalf("Len = %d, want full cache %d", l.Len(), capacity)
	}
	// Every present entry must still carry its own value, and the recency
	// list must agree with the map (Range walks the list, Len the map).
	n := 0
	l.Range(func(k, v int) bool {
		n++
		if v != k*10 {
			t.Fatalf("entry %d holds %d, want %d", k, v, k*10)
		}
		return true
	})
	if n != l.Len() {
		t.Fatalf("recency list has %d entries, map has %d", n, l.Len())
	}
	totalEvictions := 0
	for _, c := range evictions {
		totalEvictions += c
	}
	totalPuts := 0
	// Inserts = evictions + still-resident entries (no entry vanishes
	// without an OnEvict callback, none is evicted twice in a row without
	// being re-inserted).
	totalPuts = totalEvictions + l.Len()
	if totalPuts <= capacity {
		t.Fatalf("suspiciously few inserts (%d): eviction never happened", totalPuts)
	}
}
