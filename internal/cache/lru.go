// Package cache provides a small generic bounded LRU map. It is the one
// recency/eviction implementation shared by the engine's prepared-statement
// cache (sqldb) and the mapping-path executor cache (ops), which previously
// each carried their own container/list + map plumbing.
//
// An LRU is NOT safe for concurrent use; callers guard it with their own
// mutex (both call sites already hold one around every cache operation).
package cache

// node is one doubly-linked entry of the recency list.
type node[K comparable, V any] struct {
	key        K
	val        V
	prev, next *node[K, V]
}

// LRU is a bounded least-recently-used map from K to V.
type LRU[K comparable, V any] struct {
	capacity int
	entries  map[K]*node[K, V]
	// head/tail are sentinels: head.next is the most recently used entry,
	// tail.prev the least recently used.
	head, tail *node[K, V]
	onEvict    func(K, V)
}

// New creates an LRU bounded to capacity entries. A capacity <= 0 means
// the cache stores nothing: Put becomes a no-op (after evicting existing
// entries on SetCapacity).
func New[K comparable, V any](capacity int) *LRU[K, V] {
	l := &LRU[K, V]{capacity: capacity, entries: make(map[K]*node[K, V])}
	l.head = &node[K, V]{}
	l.tail = &node[K, V]{}
	l.head.next = l.tail
	l.tail.prev = l.head
	return l
}

// OnEvict installs a callback invoked for every entry dropped by capacity
// eviction or SetCapacity shrinking (not by Delete, where the caller
// already knows the key).
func (l *LRU[K, V]) OnEvict(fn func(K, V)) { l.onEvict = fn }

// Len returns the number of cached entries.
func (l *LRU[K, V]) Len() int { return len(l.entries) }

// Capacity returns the current capacity bound.
func (l *LRU[K, V]) Capacity() int { return l.capacity }

func (l *LRU[K, V]) unlink(n *node[K, V]) {
	n.prev.next = n.next
	n.next.prev = n.prev
}

func (l *LRU[K, V]) pushFront(n *node[K, V]) {
	n.prev = l.head
	n.next = l.head.next
	l.head.next.prev = n
	l.head.next = n
}

// Get returns the value cached under key and marks it most recently used.
func (l *LRU[K, V]) Get(key K) (V, bool) {
	n, ok := l.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	l.unlink(n)
	l.pushFront(n)
	return n.val, true
}

// Peek returns the value cached under key without touching recency.
func (l *LRU[K, V]) Peek(key K) (V, bool) {
	n, ok := l.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Touch marks key most recently used; it reports whether the key was
// present.
func (l *LRU[K, V]) Touch(key K) bool {
	n, ok := l.entries[key]
	if !ok {
		return false
	}
	l.unlink(n)
	l.pushFront(n)
	return true
}

// Put stores value under key (replacing any previous value), marks it most
// recently used and evicts the least recently used entries beyond
// capacity.
func (l *LRU[K, V]) Put(key K, val V) {
	if n, ok := l.entries[key]; ok {
		n.val = val
		l.unlink(n)
		l.pushFront(n)
		return
	}
	if l.capacity <= 0 {
		return
	}
	n := &node[K, V]{key: key, val: val}
	l.entries[key] = n
	l.pushFront(n)
	l.evictOverflow()
}

// Delete removes key; it reports whether the key was present. The OnEvict
// callback is not invoked.
func (l *LRU[K, V]) Delete(key K) bool {
	n, ok := l.entries[key]
	if !ok {
		return false
	}
	l.unlink(n)
	delete(l.entries, key)
	return true
}

// SetCapacity adjusts the bound, evicting as needed.
func (l *LRU[K, V]) SetCapacity(capacity int) {
	l.capacity = capacity
	l.evictOverflow()
}

// Range calls fn for every entry from most to least recently used until fn
// returns false.
func (l *LRU[K, V]) Range(fn func(K, V) bool) {
	for n := l.head.next; n != l.tail; n = n.next {
		if !fn(n.key, n.val) {
			return
		}
	}
}

func (l *LRU[K, V]) evictOverflow() {
	for len(l.entries) > l.capacity {
		lru := l.tail.prev
		l.unlink(lru)
		delete(l.entries, lru.key)
		if l.onEvict != nil {
			l.onEvict(lru.key, lru.val)
		}
	}
}
