package view

// End-to-end export benchmarks: rendering a 100k-row annotation view to a
// writer, materialized (Render a Table, then Write it — the seed path of
// the /export handler) vs streamed (Stream: resolve and write row by row).
// Both share the object-ID view and the accession lookups; the streamed
// path drops the table materialization and per-row string-slice churn.

import (
	"fmt"
	"io"
	"testing"

	"genmapper/internal/gam"
	"genmapper/internal/ops"
	"genmapper/internal/sqldb"
)

var exportBench struct {
	repo *gam.Repo
	view *ops.View
}

func benchView(b *testing.B) (*gam.Repo, *ops.View) {
	b.Helper()
	if exportBench.repo != nil {
		return exportBench.repo, exportBench.view
	}
	repo, err := gam.Open(sqldb.NewDB())
	if err != nil {
		b.Fatal(err)
	}
	const rows = 100000
	s1, _, err := repo.EnsureSource(gam.Source{Name: "Left", Content: gam.ContentGene})
	if err != nil {
		b.Fatal(err)
	}
	s2, _, _ := repo.EnsureSource(gam.Source{Name: "Right", Content: gam.ContentGene})
	mkSpecs := func(prefix string) []gam.ObjectSpec {
		specs := make([]gam.ObjectSpec, rows)
		for i := range specs {
			specs[i] = gam.ObjectSpec{Accession: fmt.Sprintf("%s:%07d", prefix, i)}
		}
		return specs
	}
	ids1, _, err := repo.EnsureObjects(s1.ID, mkSpecs("L"))
	if err != nil {
		b.Fatal(err)
	}
	ids2, _, err := repo.EnsureObjects(s2.ID, mkSpecs("R"))
	if err != nil {
		b.Fatal(err)
	}
	v := &ops.View{Source: s1.ID, Targets: []gam.SourceID{s2.ID}, Rows: make([]ops.ViewRow, rows)}
	for i := 0; i < rows; i++ {
		v.Rows[i] = ops.ViewRow{ids1[i], ids2[i]}
	}
	exportBench.repo, exportBench.view = repo, v
	return repo, v
}

func BenchmarkViewExport100kMaterialized(b *testing.B) {
	repo, v := benchView(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := Render(repo, v, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := tbl.Write(io.Discard, "tsv"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViewExport100kStream(b *testing.B) {
	repo, v := benchView(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Stream(repo, v, Options{}, io.Discard, "tsv", 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}
