package view

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"genmapper/internal/gam"
	"genmapper/internal/ops"
	"genmapper/internal/sqldb"
)

func setup(t *testing.T) (*gam.Repo, *ops.View) {
	t.Helper()
	repo, err := gam.Open(sqldb.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	ll, _, _ := repo.EnsureSource(gam.Source{Name: "LocusLink", Content: gam.ContentGene})
	goSrc, _, _ := repo.EnsureSource(gam.Source{Name: "GO", Structure: gam.StructureNetwork})
	loci, _, _ := repo.EnsureObjects(ll.ID, []gam.ObjectSpec{
		{Accession: "353", Text: "adenine phosphoribosyltransferase"},
		{Accession: "354"},
	})
	terms, _, _ := repo.EnsureObjects(goSrc.ID, []gam.ObjectSpec{
		{Accession: "GO:0009116", Text: "nucleoside metabolism"},
	})
	v := &ops.View{
		Source:  ll.ID,
		Targets: []gam.SourceID{goSrc.ID},
		Rows: []ops.ViewRow{
			{loci[0], terms[0]},
			{loci[1], 0}, // NULL annotation
		},
	}
	return repo, v
}

func TestRenderBasic(t *testing.T) {
	repo, v := setup(t)
	tbl, err := Render(repo, v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(tbl.Columns, ",") != "LocusLink,GO" {
		t.Errorf("columns = %v", tbl.Columns)
	}
	if tbl.RowCount() != 2 {
		t.Fatalf("rows = %d", tbl.RowCount())
	}
	if tbl.Rows[0][0] != "353" || tbl.Rows[0][1] != "GO:0009116" {
		t.Errorf("row 0 = %v", tbl.Rows[0])
	}
	if tbl.Rows[1][1] != "" {
		t.Errorf("NULL cell = %q", tbl.Rows[1][1])
	}
}

func TestRenderWithTextAndNullText(t *testing.T) {
	repo, v := setup(t)
	tbl, err := Render(repo, v, Options{WithText: true, NullText: "-"})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][0] != "353 (adenine phosphoribosyltransferase)" {
		t.Errorf("with-text cell = %q", tbl.Rows[0][0])
	}
	if tbl.Rows[0][1] != "GO:0009116 (nucleoside metabolism)" {
		t.Errorf("with-text target = %q", tbl.Rows[0][1])
	}
	// Object without text renders as plain accession.
	if tbl.Rows[1][0] != "354" {
		t.Errorf("textless cell = %q", tbl.Rows[1][0])
	}
	if tbl.Rows[1][1] != "-" {
		t.Errorf("null text = %q", tbl.Rows[1][1])
	}
}

func TestRenderErrors(t *testing.T) {
	repo, v := setup(t)
	bad := &ops.View{Source: 999, Targets: v.Targets}
	if _, err := Render(repo, bad, Options{}); err == nil {
		t.Error("unknown source accepted")
	}
	bad2 := &ops.View{Source: v.Source, Targets: []gam.SourceID{999}}
	if _, err := Render(repo, bad2, Options{}); err == nil {
		t.Error("unknown target accepted")
	}
	bad3 := &ops.View{Source: v.Source, Targets: v.Targets, Rows: []ops.ViewRow{{123456, 0}}}
	if _, err := Render(repo, bad3, Options{}); err == nil {
		t.Error("dangling object accepted")
	}
}

func renderedTable(t *testing.T) *Table {
	t.Helper()
	repo, v := setup(t)
	tbl, err := Render(repo, v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestWriteTSV(t *testing.T) {
	tbl := renderedTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("TSV lines = %d", len(lines))
	}
	if lines[0] != "LocusLink\tGO" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "353\tGO:0009116" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := renderedTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 || records[0][0] != "LocusLink" || records[1][1] != "GO:0009116" {
		t.Fatalf("CSV = %v", records)
	}
}

func TestWriteJSON(t *testing.T) {
	tbl := renderedTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 || got.Columns[1] != "GO" {
		t.Fatalf("JSON round trip = %+v", got)
	}
}

func TestWriteText(t *testing.T) {
	tbl := renderedTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "LocusLink") || !strings.Contains(out, "---") {
		t.Errorf("text output:\n%s", out)
	}
	// Columns align: header width >= longest cell.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[2], "353 ") {
		t.Errorf("data line = %q", lines[2])
	}
}

func TestWriteDispatch(t *testing.T) {
	tbl := renderedTable(t)
	for _, format := range []string{"text", "tsv", "csv", "json", ""} {
		var buf bytes.Buffer
		if err := tbl.Write(&buf, format); err != nil {
			t.Errorf("format %q: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Errorf("format %q produced no output", format)
		}
	}
	var buf bytes.Buffer
	if err := tbl.Write(&buf, "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

// Stream and Render+Write share one formatting engine; their outputs must
// be byte-identical in every format, including the JSON document layout
// the non-streaming encoder produced historically.
func TestStreamMatchesMaterializedWrite(t *testing.T) {
	repo, v := setup(t)
	for _, format := range []string{"tsv", "csv", "json", "text"} {
		tbl, err := Render(repo, v, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := tbl.Write(&want, format); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := Stream(repo, v, Options{}, &got, format, 1, nil); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if got.String() != want.String() {
			t.Errorf("%s: streamed output differs:\n--- stream ---\n%s\n--- write ---\n%s",
				format, got.String(), want.String())
		}
	}
}

// The incremental JSON writer must reproduce encoding/json's indented
// encoding of the Table struct exactly, for populated and empty views.
func TestStreamJSONByteParity(t *testing.T) {
	repo, v := setup(t)
	for _, view := range []*ops.View{v, {Source: v.Source, Targets: v.Targets}} {
		tbl, err := Render(repo, view, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		enc := json.NewEncoder(&want)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tbl); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := Stream(repo, view, Options{}, &got, "json", 0, nil); err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Errorf("rows=%d: JSON differs:\n--- stream ---\n%q\n--- encoder ---\n%q",
				len(view.Rows), got.String(), want.String())
		}
	}
}

// The flush hook fires periodically and once at the end.
func TestStreamFlushHook(t *testing.T) {
	repo, v := setup(t)
	flushes := 0
	var buf bytes.Buffer
	if err := Stream(repo, v, Options{}, &buf, "tsv", 1, func() error {
		flushes++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// 2 rows with flushEvery=1 → 2 periodic + 1 final.
	if flushes != 3 {
		t.Errorf("flushes = %d, want 3", flushes)
	}
}

// A render failure on the first row must surface before any byte is
// written (so HTTP handlers can still send a clean error status).
func TestStreamFirstRowErrorWritesNothing(t *testing.T) {
	repo, v := setup(t)
	bad := &ops.View{Source: v.Source, Targets: v.Targets, Rows: []ops.ViewRow{{123456, 0}}}
	var buf bytes.Buffer
	if err := Stream(repo, bad, Options{}, &buf, "tsv", 0, nil); err == nil {
		t.Fatal("dangling first row streamed without error")
	}
	if buf.Len() != 0 {
		t.Fatalf("stream wrote %d bytes before failing on row 0: %q", buf.Len(), buf.String())
	}
}

// Materialized tables keep encoding/json's nil-vs-empty Rows distinction.
func TestWriteJSONEmptyRowsShape(t *testing.T) {
	for _, tc := range []struct {
		rows [][]string
		want string
	}{
		{nil, "null"},
		{[][]string{}, "[]"},
	} {
		tbl := &Table{Columns: []string{"A"}, Rows: tc.rows}
		var got, want bytes.Buffer
		if err := tbl.WriteJSON(&got); err != nil {
			t.Fatal(err)
		}
		enc := json.NewEncoder(&want)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tbl); err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Errorf("rows=%#v: WriteJSON = %q, encoder = %q", tc.rows, got.String(), want.String())
		}
		if !strings.Contains(got.String(), `"rows": `+tc.want) {
			t.Errorf("rows=%#v: output %q missing %q", tc.rows, got.String(), tc.want)
		}
	}
}

// When a source dwarfs the view, the preload pass stops at its budget and
// the remaining IDs resolve through point lookups — output is identical.
func TestStreamPreloadBudgetFallback(t *testing.T) {
	repo, err := gam.Open(sqldb.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	src, _, _ := repo.EnsureSource(gam.Source{Name: "Big", Content: gam.ContentGene})
	const objects = 10000
	specs := make([]gam.ObjectSpec, objects)
	for i := range specs {
		specs[i] = gam.ObjectSpec{Accession: fmt.Sprintf("B:%05d", i)}
	}
	ids, _, err := repo.EnsureObjects(src.ID, specs)
	if err != nil {
		t.Fatal(err)
	}
	// preloadRowThreshold (2048) rows, but referencing the TAIL of the
	// source, past the 4x-rows preload budget — every cell must come from
	// the point-lookup fallback.
	v := &ops.View{Source: src.ID, Targets: []gam.SourceID{src.ID}}
	for i := 0; i < preloadRowThreshold; i++ {
		id := ids[objects-1-i]
		v.Rows = append(v.Rows, ops.ViewRow{id, id})
	}
	var streamed bytes.Buffer
	if err := Stream(repo, v, Options{}, &streamed, "tsv", 0, nil); err != nil {
		t.Fatal(err)
	}
	tbl, err := Render(repo, v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := tbl.Write(&want, "tsv"); err != nil {
		t.Fatal(err)
	}
	if streamed.String() != want.String() {
		t.Fatal("budget-capped stream differs from materialized render")
	}
	if !strings.Contains(streamed.String(), fmt.Sprintf("B:%05d", objects-1)) {
		t.Fatal("expected tail accession missing from output")
	}
}
