package view

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"genmapper/internal/gam"
	"genmapper/internal/ops"
	"genmapper/internal/sqldb"
)

func setup(t *testing.T) (*gam.Repo, *ops.View) {
	t.Helper()
	repo, err := gam.Open(sqldb.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	ll, _, _ := repo.EnsureSource(gam.Source{Name: "LocusLink", Content: gam.ContentGene})
	goSrc, _, _ := repo.EnsureSource(gam.Source{Name: "GO", Structure: gam.StructureNetwork})
	loci, _, _ := repo.EnsureObjects(ll.ID, []gam.ObjectSpec{
		{Accession: "353", Text: "adenine phosphoribosyltransferase"},
		{Accession: "354"},
	})
	terms, _, _ := repo.EnsureObjects(goSrc.ID, []gam.ObjectSpec{
		{Accession: "GO:0009116", Text: "nucleoside metabolism"},
	})
	v := &ops.View{
		Source:  ll.ID,
		Targets: []gam.SourceID{goSrc.ID},
		Rows: []ops.ViewRow{
			{loci[0], terms[0]},
			{loci[1], 0}, // NULL annotation
		},
	}
	return repo, v
}

func TestRenderBasic(t *testing.T) {
	repo, v := setup(t)
	tbl, err := Render(repo, v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(tbl.Columns, ",") != "LocusLink,GO" {
		t.Errorf("columns = %v", tbl.Columns)
	}
	if tbl.RowCount() != 2 {
		t.Fatalf("rows = %d", tbl.RowCount())
	}
	if tbl.Rows[0][0] != "353" || tbl.Rows[0][1] != "GO:0009116" {
		t.Errorf("row 0 = %v", tbl.Rows[0])
	}
	if tbl.Rows[1][1] != "" {
		t.Errorf("NULL cell = %q", tbl.Rows[1][1])
	}
}

func TestRenderWithTextAndNullText(t *testing.T) {
	repo, v := setup(t)
	tbl, err := Render(repo, v, Options{WithText: true, NullText: "-"})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][0] != "353 (adenine phosphoribosyltransferase)" {
		t.Errorf("with-text cell = %q", tbl.Rows[0][0])
	}
	if tbl.Rows[0][1] != "GO:0009116 (nucleoside metabolism)" {
		t.Errorf("with-text target = %q", tbl.Rows[0][1])
	}
	// Object without text renders as plain accession.
	if tbl.Rows[1][0] != "354" {
		t.Errorf("textless cell = %q", tbl.Rows[1][0])
	}
	if tbl.Rows[1][1] != "-" {
		t.Errorf("null text = %q", tbl.Rows[1][1])
	}
}

func TestRenderErrors(t *testing.T) {
	repo, v := setup(t)
	bad := &ops.View{Source: 999, Targets: v.Targets}
	if _, err := Render(repo, bad, Options{}); err == nil {
		t.Error("unknown source accepted")
	}
	bad2 := &ops.View{Source: v.Source, Targets: []gam.SourceID{999}}
	if _, err := Render(repo, bad2, Options{}); err == nil {
		t.Error("unknown target accepted")
	}
	bad3 := &ops.View{Source: v.Source, Targets: v.Targets, Rows: []ops.ViewRow{{123456, 0}}}
	if _, err := Render(repo, bad3, Options{}); err == nil {
		t.Error("dangling object accepted")
	}
}

func renderedTable(t *testing.T) *Table {
	t.Helper()
	repo, v := setup(t)
	tbl, err := Render(repo, v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestWriteTSV(t *testing.T) {
	tbl := renderedTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("TSV lines = %d", len(lines))
	}
	if lines[0] != "LocusLink\tGO" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "353\tGO:0009116" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := renderedTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 || records[0][0] != "LocusLink" || records[1][1] != "GO:0009116" {
		t.Fatalf("CSV = %v", records)
	}
}

func TestWriteJSON(t *testing.T) {
	tbl := renderedTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 || got.Columns[1] != "GO" {
		t.Fatalf("JSON round trip = %+v", got)
	}
}

func TestWriteText(t *testing.T) {
	tbl := renderedTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "LocusLink") || !strings.Contains(out, "---") {
		t.Errorf("text output:\n%s", out)
	}
	// Columns align: header width >= longest cell.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[2], "353 ") {
		t.Errorf("data line = %q", lines[2])
	}
}

func TestWriteDispatch(t *testing.T) {
	tbl := renderedTable(t)
	for _, format := range []string{"text", "tsv", "csv", "json", ""} {
		var buf bytes.Buffer
		if err := tbl.Write(&buf, format); err != nil {
			t.Errorf("format %q: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Errorf("format %q produced no output", format)
		}
	}
	var buf bytes.Buffer
	if err := tbl.Write(&buf, "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}
