// Package view renders the object-ID views produced by ops.GenerateView
// into the tabular annotation views users see (paper Figure 3 / Figure 6b):
// accessions, optional descriptive text, and export in several formats for
// further analysis in external tools (§5.1: "All results can be saved and
// downloaded in different formats").
//
// Rendering has two shapes sharing one formatting engine (RowWriter):
// Render materializes a Table, and Stream writes rows to an io.Writer as
// they are resolved, so an export's memory use stays O(1) in the number of
// rows and the first byte leaves before the last row is rendered.
package view

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"genmapper/internal/gam"
	"genmapper/internal/ops"
)

// Table is a rendered annotation view: a header row of source/target names
// and data rows of accessions. Empty cells are missing annotations (NULL).
type Table struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// RowCount returns the number of data rows.
func (t *Table) RowCount() int { return len(t.Rows) }

// Options controls rendering.
type Options struct {
	// WithText appends the object's descriptive text to the accession as
	// "accession (text)" — the style of Figure 6c's object information.
	WithText bool
	// NullText is printed for missing annotations (default empty cell).
	NullText string
}

// renderer resolves object IDs to display cells with a lookup cache shared
// across the rows of one rendering.
type renderer struct {
	repo  *gam.Repo
	opts  Options
	cache map[gam.ObjectID]string
}

func newRenderer(repo *gam.Repo, opts Options) *renderer {
	return &renderer{repo: repo, opts: opts, cache: make(map[gam.ObjectID]string)}
}

// preloadRowThreshold is the view size above which the renderer bulk-loads
// the involved sources' objects in one cursor pass per source instead of
// issuing a point query per distinct object ID. Below it, a handful of
// point lookups beats scanning whole sources.
const preloadRowThreshold = 2048

// maybePreload fills the cell cache for every object of the view's
// source and target sources, one streaming pass per source. A source is
// only preloaded when its object count is comparable to the number of
// cells the view will resolve — scanning a multi-million-object source to
// serve a few thousand rows would cost more than the point lookups it
// replaces. IDs outside the preloaded sources (or a failed preload) fall
// back to per-ID lookups in cell.
func (r *renderer) maybePreload(v *ops.View) {
	if len(v.Rows) < preloadRowThreshold {
		return
	}
	// A streamed preload row costs a fraction of a point lookup, so cap
	// each source's pass at a few multiples of the per-column lookup bound
	// (len(v.Rows)): on a source that dwarfs the view the pass stops
	// there, the partial cache stays valid, and the remaining IDs fall
	// back to point lookups.
	budget := 4 * len(v.Rows)
	seen := make(map[gam.SourceID]bool, len(v.Targets)+1)
	for _, src := range append([]gam.SourceID{v.Source}, v.Targets...) {
		if seen[src] {
			continue
		}
		seen[src] = true
		scanned := 0
		_ = r.repo.ObjectsScanEach(src, func(o *gam.Object) error {
			if scanned >= budget {
				return errPreloadBudget
			}
			scanned++
			cell := o.Accession
			if r.opts.WithText && o.Text != "" {
				cell = o.Accession + " (" + o.Text + ")"
			}
			r.cache[o.ID] = cell
			return nil
		})
	}
}

// errPreloadBudget stops a preload pass that has outgrown its usefulness.
var errPreloadBudget = errors.New("view: preload budget exhausted")

// header resolves the view's source and target names.
func (r *renderer) header(v *ops.View) ([]string, error) {
	cols := make([]string, 0, len(v.Targets)+1)
	src := r.repo.SourceByID(v.Source)
	if src == nil {
		return nil, fmt.Errorf("view: unknown source %d", v.Source)
	}
	cols = append(cols, src.Name)
	for _, tgt := range v.Targets {
		ts := r.repo.SourceByID(tgt)
		if ts == nil {
			return nil, fmt.Errorf("view: unknown target source %d", tgt)
		}
		cols = append(cols, ts.Name)
	}
	return cols, nil
}

// cell resolves one object ID to its display string.
func (r *renderer) cell(id gam.ObjectID) (string, error) {
	if id == 0 {
		return r.opts.NullText, nil
	}
	if s, ok := r.cache[id]; ok {
		return s, nil
	}
	obj, err := r.repo.Object(id)
	if err != nil {
		return "", err
	}
	if obj == nil {
		return "", fmt.Errorf("view: dangling object id %d", id)
	}
	s := obj.Accession
	if r.opts.WithText && obj.Text != "" {
		s = obj.Accession + " (" + obj.Text + ")"
	}
	r.cache[id] = s
	return s, nil
}

// row resolves one view row into cells (len(cells) == len(row) required).
func (r *renderer) row(vr ops.ViewRow, cells []string) error {
	for i, id := range vr {
		s, err := r.cell(id)
		if err != nil {
			return err
		}
		cells[i] = s
	}
	return nil
}

// Render resolves a generated view's object IDs to accessions.
func Render(repo *gam.Repo, v *ops.View, opts Options) (*Table, error) {
	r := newRenderer(repo, opts)
	cols, err := r.header(v)
	if err != nil {
		return nil, err
	}
	r.maybePreload(v)
	t := &Table{Columns: cols}
	for _, vr := range v.Rows {
		cells := make([]string, len(vr))
		if err := r.row(vr, cells); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, cells)
	}
	return t, nil
}

// Stream renders a generated view row by row into the named format (tsv,
// csv, json or text), never materializing the table. When flush is non-nil
// it is invoked after every flushEvery rows (and once at the end), after
// the writer's own buffers are drained — the hook HTTP handlers use to
// push partial results to the client.
//
// text format inherently buffers (column widths need every row); the other
// formats emit each row as it is rendered.
func Stream(repo *gam.Repo, v *ops.View, opts Options, w io.Writer, format string, flushEvery int, flush func() error) error {
	r := newRenderer(repo, opts)
	cols, err := r.header(v)
	if err != nil {
		return err
	}
	r.maybePreload(v)
	rw, err := NewRowWriter(w, format)
	if err != nil {
		return err
	}
	// Resolve the first row before emitting the header: a render failure
	// on row 0 (e.g. a dangling object ID) then surfaces before any byte
	// is written, so HTTP handlers can still report a clean error instead
	// of a 200 with a header-only body.
	cells := make([]string, len(cols))
	if len(v.Rows) > 0 {
		if len(v.Rows[0]) != len(cells) {
			return fmt.Errorf("view: row 0 has %d values, want %d", len(v.Rows[0]), len(cells))
		}
		if err := r.row(v.Rows[0], cells); err != nil {
			return err
		}
	}
	if err := rw.Header(cols); err != nil {
		return err
	}
	for i, vr := range v.Rows {
		if len(vr) != len(cells) {
			return fmt.Errorf("view: row %d has %d values, want %d", i, len(vr), len(cells))
		}
		if i > 0 { // row 0 is already resolved (and its cells still cached)
			if err := r.row(vr, cells); err != nil {
				return err
			}
		}
		if err := rw.Row(cells); err != nil {
			return err
		}
		if flush != nil && flushEvery > 0 && (i+1)%flushEvery == 0 {
			if err := rw.Flush(); err != nil {
				return err
			}
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := rw.Close(); err != nil {
		return err
	}
	if flush != nil {
		return flush()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Row writers: the one formatting engine behind Table.Write and Stream.

// RowWriter emits a rendered view one row at a time. The cells slice
// passed to Row is only valid during the call. Close finishes the output
// (format trailers, final buffer drain); Flush pushes everything written
// so far to the underlying writer where the format allows it.
type RowWriter interface {
	Header(cols []string) error
	Row(cells []string) error
	Flush() error
	Close() error
}

// NewRowWriter returns the writer for the named format: text, tsv, csv or
// json.
func NewRowWriter(w io.Writer, format string) (RowWriter, error) {
	switch strings.ToLower(format) {
	case "tsv":
		return &tsvWriter{w: w}, nil
	case "csv":
		return &csvWriter{cw: csv.NewWriter(w)}, nil
	case "json":
		return &jsonWriter{w: w}, nil
	case "text", "":
		return &textWriter{w: w}, nil
	}
	return nil, fmt.Errorf("view: unknown export format %q (text, tsv, csv, json)", format)
}

// tsvWriter writes tab-separated values, one line per row.
type tsvWriter struct {
	w   io.Writer
	buf []byte
}

func (t *tsvWriter) line(cells []string) error {
	t.buf = t.buf[:0]
	for i, c := range cells {
		if i > 0 {
			t.buf = append(t.buf, '\t')
		}
		t.buf = append(t.buf, c...)
	}
	t.buf = append(t.buf, '\n')
	_, err := t.w.Write(t.buf)
	return err
}

func (t *tsvWriter) Header(cols []string) error { return t.line(cols) }
func (t *tsvWriter) Row(cells []string) error   { return t.line(cells) }
func (t *tsvWriter) Flush() error               { return nil }
func (t *tsvWriter) Close() error               { return nil }

// csvWriter writes RFC-4180 CSV.
type csvWriter struct {
	cw *csv.Writer
}

func (c *csvWriter) Header(cols []string) error { return c.cw.Write(cols) }
func (c *csvWriter) Row(cells []string) error   { return c.cw.Write(cells) }

func (c *csvWriter) Flush() error {
	c.cw.Flush()
	return c.cw.Error()
}

func (c *csvWriter) Close() error { return c.Flush() }

// jsonWriter writes the same indented JSON document WriteJSON produces
// ({"columns": [...], "rows": [...]}) incrementally: each row is encoded
// and written as it arrives. A rowless table writes "rows": null (the
// encoding of a never-appended nil Rows slice) unless emptyAsArray is set,
// which Table.Write uses to keep encoding a non-nil empty Rows as [].
type jsonWriter struct {
	w            io.Writer
	rows         int
	emptyAsArray bool
}

func (j *jsonWriter) Header(cols []string) error {
	enc, err := json.MarshalIndent(cols, "  ", "  ")
	if err != nil {
		return err
	}
	if _, err := io.WriteString(j.w, "{\n  \"columns\": "); err != nil {
		return err
	}
	if _, err := j.w.Write(enc); err != nil {
		return err
	}
	_, err = io.WriteString(j.w, ",\n  \"rows\": ")
	return err
}

func (j *jsonWriter) Row(cells []string) error {
	sep := "[\n    "
	if j.rows > 0 {
		sep = ",\n    "
	}
	j.rows++
	enc, err := json.MarshalIndent(cells, "    ", "  ")
	if err != nil {
		return err
	}
	if _, err := io.WriteString(j.w, sep); err != nil {
		return err
	}
	_, err = j.w.Write(enc)
	return err
}

func (j *jsonWriter) Flush() error { return nil }

func (j *jsonWriter) Close() error {
	tail := "\n  ]\n}\n"
	if j.rows == 0 {
		tail = "null\n}\n"
		if j.emptyAsArray {
			tail = "[]\n}\n"
		}
	}
	_, err := io.WriteString(j.w, tail)
	return err
}

// textWriter renders the fixed-width, human-readable table (the CLI
// counterpart of Figure 3). Column widths need every row, so this format
// buffers until Close.
type textWriter struct {
	w      io.Writer
	cols   []string
	rows   [][]string
	widths []int
}

func (t *textWriter) measure(cells []string) {
	for i, c := range cells {
		if i < len(t.widths) && len(c) > t.widths[i] {
			t.widths[i] = len(c)
		}
	}
}

func (t *textWriter) Header(cols []string) error {
	t.cols = append([]string(nil), cols...)
	t.widths = make([]int, len(cols))
	t.measure(cols)
	return nil
}

func (t *textWriter) Row(cells []string) error {
	cp := append([]string(nil), cells...)
	t.rows = append(t.rows, cp)
	t.measure(cp)
	return nil
}

func (t *textWriter) Flush() error { return nil }

func (t *textWriter) Close() error {
	line := func(cells []string) error {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			for pad := len(cell); pad < t.widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintln(t.w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := line(t.cols); err != nil {
		return err
	}
	sep := make([]string, len(t.cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", t.widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Table export (materialized tables through the same row writers)

// WriteTSV writes the table as tab-separated values with a header line.
func (t *Table) WriteTSV(w io.Writer) error { return t.Write(w, "tsv") }

// WriteCSV writes the table as RFC-4180 CSV with a header line.
func (t *Table) WriteCSV(w io.Writer) error { return t.Write(w, "csv") }

// WriteJSON writes the table as a single JSON object.
func (t *Table) WriteJSON(w io.Writer) error { return t.Write(w, "json") }

// WriteText writes a fixed-width, human-readable rendering (the CLI
// counterpart of Figure 3).
func (t *Table) WriteText(w io.Writer) error { return t.Write(w, "text") }

// Write exports the table in the named format: text, tsv, csv or json.
func (t *Table) Write(w io.Writer, format string) error {
	rw, err := NewRowWriter(w, format)
	if err != nil {
		return err
	}
	// encoding/json distinguishes a nil Rows (null) from a non-nil empty
	// one ([]); preserve that for JSON consumers of materialized tables.
	if jw, ok := rw.(*jsonWriter); ok && t.Rows != nil {
		jw.emptyAsArray = true
	}
	if err := rw.Header(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := rw.Row(row); err != nil {
			return err
		}
	}
	return rw.Close()
}
