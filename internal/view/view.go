// Package view renders the object-ID views produced by ops.GenerateView
// into the tabular annotation views users see (paper Figure 3 / Figure 6b):
// accessions, optional descriptive text, and export in several formats for
// further analysis in external tools (§5.1: "All results can be saved and
// downloaded in different formats").
package view

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"genmapper/internal/gam"
	"genmapper/internal/ops"
)

// Table is a rendered annotation view: a header row of source/target names
// and data rows of accessions. Empty cells are missing annotations (NULL).
type Table struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// RowCount returns the number of data rows.
func (t *Table) RowCount() int { return len(t.Rows) }

// Options controls rendering.
type Options struct {
	// WithText appends the object's descriptive text to the accession as
	// "accession (text)" — the style of Figure 6c's object information.
	WithText bool
	// NullText is printed for missing annotations (default empty cell).
	NullText string
}

// Render resolves a generated view's object IDs to accessions.
func Render(repo *gam.Repo, v *ops.View, opts Options) (*Table, error) {
	t := &Table{}
	src := repo.SourceByID(v.Source)
	if src == nil {
		return nil, fmt.Errorf("view: unknown source %d", v.Source)
	}
	t.Columns = append(t.Columns, src.Name)
	for _, tgt := range v.Targets {
		ts := repo.SourceByID(tgt)
		if ts == nil {
			return nil, fmt.Errorf("view: unknown target source %d", tgt)
		}
		t.Columns = append(t.Columns, ts.Name)
	}

	cache := make(map[gam.ObjectID]string)
	lookup := func(id gam.ObjectID) (string, error) {
		if id == 0 {
			return opts.NullText, nil
		}
		if s, ok := cache[id]; ok {
			return s, nil
		}
		obj, err := repo.Object(id)
		if err != nil {
			return "", err
		}
		if obj == nil {
			return "", fmt.Errorf("view: dangling object id %d", id)
		}
		s := obj.Accession
		if opts.WithText && obj.Text != "" {
			s = obj.Accession + " (" + obj.Text + ")"
		}
		cache[id] = s
		return s, nil
	}

	for _, row := range v.Rows {
		out := make([]string, len(row))
		for i, id := range row {
			s, err := lookup(id)
			if err != nil {
				return nil, err
			}
			out[i] = s
		}
		t.Rows = append(t.Rows, out)
	}
	return t, nil
}

// WriteTSV writes the table as tab-separated values with a header line.
func (t *Table) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the table as RFC-4180 CSV with a header line.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the table as a single JSON object.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// WriteText writes a fixed-width, human-readable rendering (the CLI
// counterpart of Figure 3).
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			for pad := len(cell); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// Write exports the table in the named format: text, tsv, csv or json.
func (t *Table) Write(w io.Writer, format string) error {
	switch strings.ToLower(format) {
	case "tsv":
		return t.WriteTSV(w)
	case "csv":
		return t.WriteCSV(w)
	case "json":
		return t.WriteJSON(w)
	case "text", "":
		return t.WriteText(w)
	}
	return fmt.Errorf("view: unknown export format %q (text, tsv, csv, json)", format)
}
