package lockorder_test

import (
	"testing"

	"genmapper/internal/lint/analysistest"
	"genmapper/internal/lint/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), lockorder.Analyzer,
		"genmapper/internal/sqldb", "genmapper/internal/wal")
}
