// Package lockorder checks the engine's documented lock-acquisition order
// and that no blocking operation runs under an exclusive database lock.
//
// The engine's deadlock-freedom argument is a total order per lock domain:
//
//	db domain:  DB.writer < DB.mu < tablePart.w < Table.histMu
//	            < tablePart.mu < DB.commitMu
//	wal domain: WAL.syncMu < WAL.mu
//
// and one cross-cutting rule: fsync-class operations (File.Sync,
// WAL.Durable, the durability wait) never run while a db-domain lock is
// held exclusively — that is what makes group commit group anything.
//
// tablePart.w (the per-partition write latch) is a multi-instance class:
// a latched statement holds several at once, acquired in ascending
// partition order by Table.acquireLatches — the only function allowed to
// take it — so re-acquisition within the class is not a violation and is
// exempted below; ordering against the other classes is still checked.
//
// The analysis is intraprocedural and walks each function body in source
// order, maintaining the set of locks held: Lock/RLock on a classified
// field adds it, Unlock/RUnlock removes it, `defer mu.Unlock()` leaves it
// held to the end (which is its runtime meaning). Function literals are
// analyzed as separate bodies with an empty held set — a goroutine does
// not inherit its spawner's locks. Acquiring a class ranked lower than one
// already held, re-acquiring a held class, or making a blocking call with
// a db-domain lock held exclusively is reported.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"genmapper/internal/lint/analysis"
	"genmapper/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "checks lock-acquisition order and blocking calls under exclusive locks",
	Run:  run,
}

// lockClass is one classified mutex field.
type lockClass struct {
	domain string
	rank   int    // acquisition order within the domain, ascending
	label  string // how the lock is named in diagnostics and docs
	multi  bool   // several instances held at once (ordered by the acquirer)
}

// classes maps "pkgpath.Type.field" keys to their documented order.
var classes = map[string]lockClass{
	"genmapper/internal/sqldb.DB.writer":    {domain: "db", rank: 0, label: "db.writer"},
	"genmapper/internal/sqldb.DB.mu":        {domain: "db", rank: 1, label: "db.mu"},
	"genmapper/internal/sqldb.tablePart.w":  {domain: "db", rank: 2, label: "tablePart.w", multi: true},
	"genmapper/internal/sqldb.Table.histMu": {domain: "db", rank: 3, label: "Table.histMu"},
	"genmapper/internal/sqldb.tablePart.mu": {domain: "db", rank: 4, label: "tablePart.mu"},
	"genmapper/internal/sqldb.DB.commitMu":  {domain: "db", rank: 5, label: "db.commitMu"},
	"genmapper/internal/wal.WAL.syncMu":     {domain: "wal", rank: 0, label: "wal.syncMu"},
	"genmapper/internal/wal.WAL.mu":         {domain: "wal", rank: 1, label: "wal.mu"},
}

// blockingMethods are fsync-class calls: they block on disk or on another
// goroutine's fsync and must not run under an exclusive db-domain lock.
var blockingMethods = map[string]string{
	"genmapper/internal/wal.WAL.Durable":       "WAL.Durable",
	"genmapper/internal/wal.File.Sync":         "File.Sync",
	"os.File.Sync":                             "File.Sync",
	"genmapper/internal/sqldb.durability.wait": "durability.wait",
}

// held tracks one acquired lock.
type heldLock struct {
	class  lockClass
	shared bool // RLock rather than Lock
	pos    token.Pos
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			walkBody(pass, fn.Body)
		}
	}
	return nil, nil
}

// walkBody analyzes one body with an empty held set, queueing nested
// function literals for their own analysis.
func walkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	held := make(map[string]heldLock)
	var lits []*ast.FuncLit
	lintutil.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, t)
			return false
		case *ast.CallExpr:
			visitCall(pass, t, stack, held)
		case *ast.SendStmt:
			checkBlocked(pass, t.Pos(), "channel send", held)
		case *ast.UnaryExpr:
			if t.Op == token.ARROW {
				checkBlocked(pass, t.Pos(), "channel receive", held)
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[t.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					checkBlocked(pass, t.Pos(), "channel range", held)
				}
			}
		}
		return true
	})
	for _, lit := range lits {
		walkBody(pass, lit.Body)
	}
}

func visitCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node, held map[string]heldLock) {
	recv, recvKey, method, ok := lintutil.MethodCall(pass.TypesInfo, call)
	if !ok {
		return
	}
	if label, blocking := blockingMethods[recvKey+"."+method]; blocking {
		checkBlocked(pass, call.Pos(), label+" call", held)
		return
	}
	key, isField := lintutil.FieldKey(pass.TypesInfo, recv)
	if !isField {
		return
	}
	class, classified := classes[key]
	if !classified {
		return
	}
	switch method {
	case "Lock", "RLock":
		shared := method == "RLock"
		if prev, again := held[key]; again && !class.multi {
			pass.Reportf(call.Pos(), "%s acquired while already held (acquired at %s)", class.label, pass.Fset.Position(prev.pos))
			return
		}
		for _, h := range held {
			if h.class.domain == class.domain && h.class.rank > class.rank {
				pass.Reportf(call.Pos(), "lock order violation: %s acquired while holding %s; documented order is %s", class.label, h.class.label, domainOrder(class.domain))
			}
		}
		// A deferred Lock makes no sense and a deferred Unlock keeps the
		// lock held to function end, which the model below reflects by
		// never removing on defer.
		if !insideDefer(stack) {
			held[key] = heldLock{class: class, shared: shared, pos: call.Pos()}
		}
	case "Unlock", "RUnlock":
		if !insideDefer(stack) {
			delete(held, key)
		}
	}
}

// checkBlocked reports op if any db-domain lock is held exclusively (or at
// all, for the writer and partition locks — waiting under those starves
// every other writer).
func checkBlocked(pass *analysis.Pass, pos token.Pos, op string, held map[string]heldLock) {
	for _, h := range held {
		if h.class.domain != "db" {
			continue
		}
		// A shared db.mu is how streaming reads legitimately wait on the
		// parallel exchange; only exclusive holds are fsync-ordering bugs.
		if h.class.label == "db.mu" && h.shared {
			continue
		}
		pass.Reportf(pos, "%s while holding %s (acquired at %s); release db locks before blocking so commits can group", op, h.class.label, pass.Fset.Position(h.pos))
		return
	}
}

func insideDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

func domainOrder(domain string) string {
	if domain == "wal" {
		return "syncMu < mu"
	}
	return "writer < mu < tablePart.w < Table.histMu < tablePart.mu < commitMu"
}
