// Stub of the lock surface of genmapper/internal/wal.
// Documented order: WAL.syncMu < WAL.mu.
package wal

import "sync"

type File interface {
	Sync() error
}

type WAL struct {
	syncMu sync.Mutex
	mu     sync.Mutex
	f      File
}

func syncThenMu(w *WAL) {
	w.syncMu.Lock()
	w.mu.Lock()
	w.mu.Unlock()
	w.syncMu.Unlock()
}

func muThenSync(w *WAL) {
	w.mu.Lock()
	w.syncMu.Lock() // want `lock order violation: wal\.syncMu acquired while holding wal\.mu`
	w.syncMu.Unlock()
	w.mu.Unlock()
}

func advance(w *WAL) {
	w.mu.Lock()
	w.mu.Unlock()
	// Releasing mu before taking syncMu keeps the order legal (the real
	// AdvanceTo does exactly this dance).
	w.syncMu.Lock()
	w.syncMu.Unlock()
}

func syncUnderWalLock(w *WAL) error {
	// wal-domain locks may be held across fsync — that serialization is the
	// point of syncMu; only db-domain locks must not be.
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return w.f.Sync()
}

func bootstrapInversion(w *WAL) {
	w.mu.Lock()
	//gmlint:ignore lockorder startup path runs before any other goroutine exists
	w.syncMu.Lock()
	w.syncMu.Unlock()
	w.mu.Unlock()
}
