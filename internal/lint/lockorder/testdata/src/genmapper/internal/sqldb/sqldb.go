// Stub of the lock surface of genmapper/internal/sqldb. The mutex fields
// are unexported, so ordered and inverted acquisitions both live here.
// Documented order: DB.writer < DB.mu < tablePart.mu.
package sqldb

import "sync"

type tablePart struct{ mu sync.RWMutex }

type durability struct{}

func (d *durability) wait(lsn uint64) error { return nil }

type DB struct {
	writer  sync.Mutex
	mu      sync.RWMutex
	parts   []*tablePart
	durable *durability
}

func execOrdered(db *DB) {
	db.writer.Lock()
	db.mu.Lock()
	p := db.parts[0]
	p.mu.Lock()
	p.mu.Unlock()
	db.mu.Unlock()
	db.writer.Unlock()
}

func execInverted(db *DB) {
	db.mu.Lock()
	db.writer.Lock() // want `lock order violation: db\.writer acquired while holding db\.mu`
	db.writer.Unlock()
	db.mu.Unlock()
}

func partThenDB(db *DB, p *tablePart) {
	p.mu.Lock()
	db.mu.RLock() // want `lock order violation: db\.mu acquired while holding tablePart\.mu`
	db.mu.RUnlock()
	p.mu.Unlock()
}

func doubleLock(db *DB) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mu.Lock() // want `db\.mu acquired while already held`
}

func fsyncUnderLock(db *DB, lsn uint64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.durable.wait(lsn) // want `durability\.wait call while holding db\.mu`
}

func groupCommit(db *DB, lsn uint64) error {
	db.mu.Lock()
	db.mu.Unlock()
	// The wait happens outside the lock so concurrent commits share a sync.
	return db.durable.wait(lsn)
}

func ackUnderWriter(db *DB, ch chan int) {
	db.writer.Lock()
	ch <- 1 // want `channel send while holding db\.writer`
	db.writer.Unlock()
}

func streamShared(db *DB, ch chan int) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	// A shared db.mu may wait on the parallel exchange: writers are not
	// blocked behind this read.
	return <-ch
}

func spawnWorker(db *DB, p *tablePart, done chan struct{}) {
	db.mu.Lock()
	defer db.mu.Unlock()
	go func() {
		// A goroutine does not inherit the spawner's locks.
		p.mu.Lock()
		p.mu.Unlock()
		done <- struct{}{}
	}()
}
