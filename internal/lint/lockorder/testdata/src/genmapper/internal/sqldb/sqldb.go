// Stub of the lock surface of genmapper/internal/sqldb. The mutex fields
// are unexported, so ordered and inverted acquisitions both live here.
// Documented order:
// DB.writer < DB.mu < tablePart.w < Table.histMu < tablePart.mu < DB.commitMu.
package sqldb

import "sync"

type tablePart struct {
	w  sync.Mutex
	mu sync.RWMutex
}

type Table struct {
	histMu sync.Mutex
	parts  []*tablePart
}

type durability struct{}

func (d *durability) wait(lsn uint64) error { return nil }

type DB struct {
	writer   sync.Mutex
	mu       sync.RWMutex
	commitMu sync.Mutex
	parts    []*tablePart
	durable  *durability
}

func execOrdered(db *DB) {
	db.writer.Lock()
	db.mu.Lock()
	p := db.parts[0]
	p.mu.Lock()
	p.mu.Unlock()
	db.mu.Unlock()
	db.writer.Unlock()
}

func execInverted(db *DB) {
	db.mu.Lock()
	db.writer.Lock() // want `lock order violation: db\.writer acquired while holding db\.mu`
	db.writer.Unlock()
	db.mu.Unlock()
}

func partThenDB(db *DB, p *tablePart) {
	p.mu.Lock()
	db.mu.RLock() // want `lock order violation: db\.mu acquired while holding tablePart\.mu`
	db.mu.RUnlock()
	p.mu.Unlock()
}

func doubleLock(db *DB) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mu.Lock() // want `db\.mu acquired while already held`
}

func fsyncUnderLock(db *DB, lsn uint64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.durable.wait(lsn) // want `durability\.wait call while holding db\.mu`
}

func groupCommit(db *DB, lsn uint64) error {
	db.mu.Lock()
	db.mu.Unlock()
	// The wait happens outside the lock so concurrent commits share a sync.
	return db.durable.wait(lsn)
}

func ackUnderWriter(db *DB, ch chan int) {
	db.writer.Lock()
	ch <- 1 // want `channel send while holding db\.writer`
	db.writer.Unlock()
}

func streamShared(db *DB, ch chan int) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	// A shared db.mu may wait on the parallel exchange: writers are not
	// blocked behind this read.
	return <-ch
}

func spawnWorker(db *DB, p *tablePart, done chan struct{}) {
	db.mu.Lock()
	defer db.mu.Unlock()
	go func() {
		// A goroutine does not inherit the spawner's locks.
		p.mu.Lock()
		p.mu.Unlock()
		done <- struct{}{}
	}()
}

// The latched-writer path: shared db.mu, several partition write latches
// acquired in ascending order (a multi-instance class — the repeat Lock is
// not a re-acquisition violation), partition data locks inside, and
// commitMu last. This is the documented order end to end.
func latchedCommit(db *DB, t *Table) {
	db.mu.RLock()
	for _, p := range t.parts {
		p.w.Lock()
	}
	t.histMu.Lock()
	p := t.parts[0]
	p.mu.Lock()
	p.mu.Unlock()
	t.histMu.Unlock()
	db.commitMu.Lock()
	db.commitMu.Unlock()
	for _, p := range t.parts {
		p.w.Unlock()
	}
	db.mu.RUnlock()
}

// Taking a write latch after the partition data lock inverts the order:
// another writer holding the latch may be waiting on this partition's mu.
func latchAfterPart(p *tablePart) {
	p.mu.Lock()
	p.w.Lock() // want `lock order violation: tablePart\.w acquired while holding tablePart\.mu`
	p.w.Unlock()
	p.mu.Unlock()
}

// commitMu is the last lock in the order; acquiring anything under it
// would let a committer block a latched writer mid-publication.
func lockUnderCommitMu(db *DB, p *tablePart) {
	db.commitMu.Lock()
	p.mu.Lock() // want `lock order violation: tablePart\.mu acquired while holding db\.commitMu`
	p.mu.Unlock()
	db.commitMu.Unlock()
}

// The history map lock nests inside the latch but outside partition data
// locks; taking it after p.mu is the inversion vacuum would deadlock on.
func histAfterPart(t *Table, p *tablePart) {
	p.mu.Lock()
	t.histMu.Lock() // want `lock order violation: Table\.histMu acquired while holding tablePart\.mu`
	t.histMu.Unlock()
	p.mu.Unlock()
}
