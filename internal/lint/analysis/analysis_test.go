package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// reportCalls is a toy analyzer that flags every function call, giving the
// directive machinery something to suppress.
var reportCalls = &Analyzer{
	Name: "reportcalls",
	Doc:  "flags every call expression (test analyzer)",
	Run: func(pass *Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(c.Pos(), "call found")
				}
				return true
			})
		}
		return nil, nil
	},
}

// loadFixture writes src as a one-file package under a temp GOPATH-style
// tree and loads it.
func loadFixture(t *testing.T, src string) []*Package {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, "src", "p")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(".", root)
	pkgs, err := loader.LoadPaths("p")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return pkgs
}

func runOn(t *testing.T, src string) []Finding {
	t.Helper()
	findings, err := RunAnalyzers(loadFixture(t, src), []*Analyzer{reportCalls})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return findings
}

func messages(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Analyzer + ": " + f.Message
	}
	return out
}

func TestDirectiveSuppressesOwnAndNextLine(t *testing.T) {
	findings := runOn(t, `package p
func f() {}
func g() {
	//gmlint:ignore reportcalls covered: the call below is intentional
	f()
	f() //gmlint:ignore reportcalls trailing form also works
	f()
}
`)
	if len(findings) != 1 {
		t.Fatalf("want exactly the unsuppressed call reported, got %v", messages(findings))
	}
	if findings[0].Pos.Line != 7 {
		t.Errorf("finding at line %d, want the third call on line 7", findings[0].Pos.Line)
	}
}

func TestDirectiveWithoutJustificationIsReported(t *testing.T) {
	findings := runOn(t, `package p
func f() {}
func g() {
	//gmlint:ignore reportcalls
	f()
}
`)
	if len(findings) != 2 {
		t.Fatalf("want bare directive rejected and the call still reported, got %v", messages(findings))
	}
	var sawBad, sawCall bool
	for _, f := range findings {
		if f.Analyzer == "gmlint" && strings.Contains(f.Message, "needs a justification") {
			sawBad = true
		}
		if f.Analyzer == "reportcalls" {
			sawCall = true
		}
	}
	if !sawBad || !sawCall {
		t.Errorf("got %v", messages(findings))
	}
}

func TestDirectiveUnknownAnalyzerIsReported(t *testing.T) {
	findings := runOn(t, `package p
func f() {}
func g() {
	//gmlint:ignore nosuchcheck speculative suppression
	f()
}
`)
	var sawUnknown bool
	for _, f := range findings {
		if f.Analyzer == "gmlint" && strings.Contains(f.Message, `unknown analyzer "nosuchcheck"`) {
			sawUnknown = true
		}
	}
	if !sawUnknown {
		t.Errorf("unknown-analyzer directive not reported: %v", messages(findings))
	}
}

func TestFindingsSortedByPosition(t *testing.T) {
	findings := runOn(t, `package p
func f() {}
func g() { f(); f() }
func h() { f() }
`)
	if len(findings) != 3 {
		t.Fatalf("want 3 findings, got %v", messages(findings))
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1].Pos, findings[i].Pos
		if a.Line > b.Line || (a.Line == b.Line && a.Column > b.Column) {
			t.Errorf("findings out of order: %v before %v", a, b)
		}
	}
}
