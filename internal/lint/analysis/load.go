package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader type-checks packages without golang.org/x/tools: module packages
// are parsed and checked from source (in the dependency order `go list`
// reports), while standard-library imports are satisfied from the
// compiler's export data, located via `go list -export`. Everything works
// offline — the only external process is the go tool itself.
type Loader struct {
	Fset *token.FileSet
	// Dir is where go list runs; any directory inside the module works.
	Dir string
	// SrcDirs are GOPATH-style roots (containing a src/ tree) consulted
	// before module and standard-library resolution. The analysistest
	// fixture runner points this at a testdata directory, which also lets
	// fixtures shadow real module import paths with small stubs.
	SrcDirs []string

	exports map[string]string   // import path -> export data file
	pkgs    map[string]*Package // source-checked packages
	gcImp   types.Importer      // reads export data through lookupExport
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string, srcDirs ...string) *Loader {
	l := &Loader{
		Fset:    token.NewFileSet(),
		Dir:     dir,
		SrcDirs: srcDirs,
		exports: make(map[string]string),
		pkgs:    make(map[string]*Package),
	}
	l.gcImp = importer.ForCompiler(l.Fset, "gc", l.lookupExport)
	return l
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -deps -json -export` for the patterns and decodes
// the JSON stream.
func (l *Loader) goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-deps", "-json", "-export", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load loads the packages matching the go patterns (e.g. "./...") plus
// their dependencies and returns the matched (non-dependency) packages,
// type-checked, in import-path order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	var roots []string
	// `go list -deps` emits dependencies before dependents, so checking in
	// stream order always finds imports already loaded.
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Module == nil {
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
			continue
		}
		if _, err := l.loadSource(p.ImportPath, p.Dir, p.GoFiles); err != nil {
			return nil, err
		}
		if !p.DepOnly {
			roots = append(roots, p.ImportPath)
		}
	}
	sort.Strings(roots)
	out := make([]*Package, 0, len(roots))
	for _, path := range roots {
		out = append(out, l.pkgs[path])
	}
	return out, nil
}

// LoadPaths loads the given import paths through the SrcDirs roots (fixture
// mode). Paths not found under any SrcDir fall back to module/stdlib
// resolution.
func (l *Loader) LoadPaths(paths ...string) ([]*Package, error) {
	out := make([]*Package, 0, len(paths))
	for _, path := range paths {
		tp, err := l.importPkg(path)
		if err != nil {
			return nil, err
		}
		pkg := l.pkgs[tp.Path()]
		if pkg == nil {
			return nil, fmt.Errorf("lint: %s did not load from source", path)
		}
		out = append(out, pkg)
	}
	return out, nil
}

// lookupExport feeds the gc importer the export data file for an import
// path, shelling out to `go list -export` for paths not yet indexed (the
// standard library builds its export data into the local build cache, so
// this works offline).
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	if _, ok := l.exports[path]; !ok {
		listed, err := l.goList([]string{path})
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
		}
	}
	file, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(file)
}

// srcDirFor resolves an import path against the SrcDirs roots.
func (l *Loader) srcDirFor(path string) (string, bool) {
	for _, root := range l.SrcDirs {
		dir := filepath.Join(root, "src", filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	return "", false
}

// importPkg resolves one import: SrcDirs first, then already-loaded source
// packages, then export data.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg.Types, nil
	}
	if dir, ok := l.srcDirFor(path); ok {
		pkg, err := l.loadSource(path, dir, nil)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.gcImp.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// loadSource parses and type-checks one package from source. files == nil
// lists the directory (fixture mode: every non-test .go file).
func (l *Loader) loadSource(path, dir string, files []string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if files == nil {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: %s: no Go files in %s", path, dir)
	}
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", path, err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tp, err := conf.Check(path, l.Fset, syntax, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for i, e := range typeErrs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type-check %s:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: syntax, Types: tp, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
