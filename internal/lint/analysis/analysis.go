// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The x/tools module is deliberately not a dependency — the repo builds
// offline with the standard library only — so this package re-creates the
// small slice of the API the gmlint analyzers need (Analyzer, Pass,
// Diagnostic, a package loader, and suppression directives). Analyzers
// written against it keep the upstream shape: if the real dependency ever
// becomes available, porting is a matter of changing one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one named check. Run inspects the package in its Pass
// and reports findings via pass.Report; the returned value is ignored (kept
// for upstream API parity).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// Pass hands an Analyzer one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic as emitted by the driver: position
// resolved against the file set and tagged with the analyzer that found it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// ---------------------------------------------------------------------------
// Suppression directives
//
// A finding is suppressed by a comment of the form
//
//	//gmlint:ignore <analyzer> <justification>
//
// placed either on the reported line or on the line directly above it. The
// justification is mandatory: a bare directive suppresses nothing and is
// itself reported, so every escape hatch in the tree documents why the
// invariant does not apply.

var directiveRe = regexp.MustCompile(`^//gmlint:ignore\s+([A-Za-z0-9_-]+)\s*(.*)$`)

// directive is one parsed //gmlint:ignore comment.
type directive struct {
	analyzer string
	reason   string
	pos      token.Position
}

// parseDirectives extracts every gmlint directive from a file's comments.
func parseDirectives(fset *token.FileSet, file *ast.File) []directive {
	var out []directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := directiveRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			out = append(out, directive{
				analyzer: m[1],
				reason:   strings.TrimSpace(m[2]),
				pos:      fset.Position(c.Pos()),
			})
		}
	}
	return out
}

// suppressor indexes a package's directives for fast lookup at report time.
type suppressor struct {
	// byLine maps file -> line -> analyzers suppressed on that line.
	byLine map[string]map[int]map[string]bool
	bad    []Finding // malformed directives, reported unconditionally
}

// newSuppressor scans the package files for directives. known names the
// valid analyzers so typos are caught instead of silently ignored.
func newSuppressor(fset *token.FileSet, files []*ast.File, known map[string]bool) *suppressor {
	s := &suppressor{byLine: make(map[string]map[int]map[string]bool)}
	codeLines := make(map[string]map[int]bool, len(files))
	for _, f := range files {
		codeLines[fset.Position(f.Pos()).Filename] = fileCodeLines(fset, f)
	}
	for _, f := range files {
		for _, d := range parseDirectives(fset, f) {
			switch {
			case d.reason == "":
				s.bad = append(s.bad, Finding{
					Analyzer: "gmlint", Pos: d.pos,
					Message: fmt.Sprintf("gmlint:ignore %s needs a justification after the analyzer name", d.analyzer),
				})
				continue
			case known != nil && !known[d.analyzer]:
				s.bad = append(s.bad, Finding{
					Analyzer: "gmlint", Pos: d.pos,
					Message: fmt.Sprintf("gmlint:ignore names unknown analyzer %q", d.analyzer),
				})
				continue
			}
			lines := s.byLine[d.pos.Filename]
			if lines == nil {
				lines = make(map[int]map[string]bool)
				s.byLine[d.pos.Filename] = lines
			}
			// A trailing directive (code precedes it on the line) covers
			// only its own line; a standalone one covers the next line —
			// never both, so one directive cannot silence two findings.
			covered := d.pos.Line + 1
			if codeLines[d.pos.Filename][d.pos.Line] {
				covered = d.pos.Line
			}
			if lines[covered] == nil {
				lines[covered] = make(map[string]bool)
			}
			lines[covered][d.analyzer] = true
		}
	}
	return s
}

// fileCodeLines records the lines on which non-comment tokens appear, so a
// directive can tell whether it trails code or stands alone.
func fileCodeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		case *ast.Ident, *ast.BasicLit:
			lines[fset.Position(n.Pos()).Line] = true
		}
		return true
	})
	return lines
}

// suppressed reports whether analyzer findings at pos are ignored.
func (s *suppressor) suppressed(analyzer string, pos token.Position) bool {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer]
}

// RunAnalyzers applies the analyzers to every loaded package, resolves and
// directive-filters the diagnostics, and returns them sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		sup := newSuppressor(pkg.Fset, pkg.Files, known)
		findings = append(findings, sup.bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if sup.suppressed(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return findings, nil
}
