// Package mvccepoch enforces the MVCC publication invariant: commit
// epochs become visible to lock-free readers only through the audited
// commit accessor, and only after the commit's WAL record is appended.
//
// Four rules, intraprocedural over internal/sqldb types:
//
//  1. DB.epoch may only be mutated inside publishCommit. The epoch is
//     the release fence every snapshot reader synchronizes on; a store
//     anywhere else can make versions visible whose beg stamps a reader
//     has not been guaranteed to observe.
//  2. rowVersion.beg may only be stored with the result of
//     writeCtx.stamp() (version installation: provisional or lock-mode
//     committed) or inside publishCommit (commit-epoch stamping). Any
//     other store forges a visibility stamp outside the audited sites.
//  3. A call to DB.publishCommit must be lexically preceded by a WAL
//     append (durability.logCommit, WAL.Append, or buffering into
//     Tx.logged) in the same function. Publishing first would let a
//     snapshot reader observe a commit a crash could erase.
//  4. DB.publishCommit may only be called from the audited committer
//     functions (publishCallers). Since per-partition latching, epoch
//     advances are serialized by holding either the database exclusively
//     or db.commitMu under shared db.mu; that argument is made per call
//     site, so a new site must be added here deliberately.
package mvccepoch

import (
	"go/ast"
	"go/token"

	"genmapper/internal/lint/analysis"
	"genmapper/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "mvccepoch",
	Doc:  "requires MVCC commit epochs to be published only by publishCommit, after the WAL append",
	Run:  run,
}

const sqldbPath = "genmapper/internal/sqldb"

// epochPublishers are the only functions allowed to mutate DB.epoch.
var epochPublishers = map[string]bool{
	"publishCommit": true,
}

// begStampers may store arbitrary values into rowVersion.beg: only the
// commit publisher, which stamps commit epochs.
var begStampers = map[string]bool{
	"publishCommit": true,
}

// logCalls are the method calls that constitute "the commit is bound for
// the WAL" (same set walack keys on).
var logCalls = map[string]bool{
	"genmapper/internal/sqldb.durability.logCommit": true,
	"genmapper/internal/wal.WAL.Append":             true,
}

// publishCallers are the audited commit paths: the only functions that
// may call publishCommit. execPrepared and Tx.Commit hold the database
// exclusively; commitConcurrent and execLatchedOnce hold db.mu shared
// plus db.commitMu (the latched-writer serialization point).
var publishCallers = map[string]bool{
	"execPrepared":     true,
	"Commit":           true,
	"commitConcurrent": true,
	"execLatchedOnce":  true,
}

// mutators are the sync/atomic methods that write.
var mutators = map[string]bool{
	"Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "And": true, "Or": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBody(pass, fn.Name.Name, fn.Body)
		}
	}
	return nil, nil
}

func checkBody(pass *analysis.Pass, fnName string, body *ast.BlockStmt) {
	// Position of the first WAL-append step, or NoPos when the function
	// never logs.
	firstLog := token.NoPos
	var publishes []*ast.CallExpr
	var lits []*ast.FuncLit
	lintutil.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			// A closure is its own commit path: the spawner's append
			// happens-before nothing inside a goroutine body.
			lits = append(lits, t)
			return false
		case *ast.CallExpr:
			if _, recvKey, name, ok := lintutil.MethodCall(pass.TypesInfo, t); ok {
				full := recvKey + "." + name
				if logCalls[full] && firstLog == token.NoPos {
					firstLog = t.Pos()
				}
				if full == sqldbPath+".DB.publishCommit" {
					publishes = append(publishes, t)
				}
			}
		case *ast.SelectorExpr:
			// Buffering into tx.logged defers the append to Commit, which
			// re-checks the ordering there; treat it as the log step.
			if key, ok := lintutil.FieldKey(pass.TypesInfo, t); ok && key == sqldbPath+".Tx.logged" && firstLog == token.NoPos {
				firstLog = t.Pos()
			}
			checkEpochMutation(pass, fnName, t, stack)
		}
		return true
	})

	for _, p := range publishes {
		if firstLog == token.NoPos || p.Pos() < firstLog {
			pass.Reportf(p.Pos(), "publishCommit before any WAL append in this function; commit epochs may only become visible after the commit record is logged")
		}
		if pass.Pkg.Path() == sqldbPath && !publishCallers[fnName] {
			pass.Reportf(p.Pos(), "publishCommit called outside the audited committer functions; epoch advances must be serialized (exclusive db.mu, or db.commitMu under shared mu) — add the new site to mvccepoch's publishCallers with that argument")
		}
	}
	for _, lit := range lits {
		checkBody(pass, fnName, lit.Body)
	}
}

// checkEpochMutation reports stores to DB.epoch outside publishCommit and
// stores to rowVersion.beg that neither come from writeCtx.stamp() nor
// happen inside an audited stamper.
func checkEpochMutation(pass *analysis.Pass, fnName string, sel *ast.SelectorExpr, stack []ast.Node) {
	key, ok := lintutil.FieldKey(pass.TypesInfo, sel)
	if !ok {
		return
	}
	switch key {
	case sqldbPath + ".DB.epoch":
		if call, method := mutatorCall(sel, stack); call != nil && mutators[method] && !epochPublishers[fnName] {
			pass.Reportf(sel.Pos(), "DB.epoch is mutated outside publishCommit; the commit epoch is the readers' release fence and may only advance through the audited publisher")
		}
	case sqldbPath + ".rowVersion.beg":
		call, method := mutatorCall(sel, stack)
		if call == nil || !mutators[method] || begStampers[fnName] {
			return
		}
		if len(call.Args) == 1 && isStampCall(pass, call.Args[0]) {
			return
		}
		pass.Reportf(sel.Pos(), "rowVersion.beg is stamped outside the audited sites; install versions with writeCtx.stamp() and publish commit epochs only through publishCommit")
	}
}

// mutatorCall returns the call expression and method name when sel is the
// receiver of a method call (sel.Method(...)), e.g. db.epoch.Store(e).
func mutatorCall(sel *ast.SelectorExpr, stack []ast.Node) (*ast.CallExpr, string) {
	if len(stack) < 2 {
		return nil, ""
	}
	parent, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	if !ok || parent.X != ast.Expr(sel) {
		return nil, ""
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok || call.Fun != ast.Expr(parent) {
		return nil, ""
	}
	return call, parent.Sel.Name
}

// isStampCall reports whether e is a call of writeCtx.stamp.
func isStampCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	_, recvKey, name, ok := lintutil.MethodCall(pass.TypesInfo, call)
	return ok && recvKey == sqldbPath+".writeCtx" && name == "stamp"
}
