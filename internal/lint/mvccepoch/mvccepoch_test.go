package mvccepoch_test

import (
	"testing"

	"genmapper/internal/lint/analysistest"
	"genmapper/internal/lint/mvccepoch"
)

func TestMVCCEpoch(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), mvccepoch.Analyzer,
		"genmapper/internal/sqldb")
}
