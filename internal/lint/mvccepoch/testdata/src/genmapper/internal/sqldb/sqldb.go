// Stub of the MVCC commit surface of genmapper/internal/sqldb. The
// analyzer matches fully-qualified names, so the fixture scenarios live
// in this shadowed package just like the real publication sites do.
package sqldb

import "sync/atomic"

type Value any

type rowVersion struct {
	row []Value
	beg atomic.Uint64
}

type writeCtx struct {
	mvcc bool
	tx   uint64
}

func (w *writeCtx) stamp() uint64 {
	if w.mvcc {
		return 1<<63 | w.tx
	}
	return 0
}

type logStmt struct{ sql string }

type durability struct{}

func (d *durability) logCommit(stmts []logStmt) (uint64, error) { return 0, nil }

type DB struct {
	epoch   atomic.Uint64
	durable *durability
}

// publishCommit is the one audited epoch publisher.
func (db *DB) publishCommit(installed []*rowVersion) {
	e := db.epoch.Load() + 1
	for _, v := range installed {
		v.beg.Store(e)
	}
	db.epoch.Store(e)
}

type Tx struct {
	db     *DB
	logged []logStmt
}
