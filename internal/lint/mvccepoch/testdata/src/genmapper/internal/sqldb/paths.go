package sqldb

// Advancing the epoch anywhere but publishCommit breaks the release
// fence snapshot readers synchronize on.
func (db *DB) bumpEpochDirect() {
	db.epoch.Add(1) // want `DB\.epoch is mutated outside publishCommit`
}

// Reading the epoch is fine anywhere: snapshots and conflict horizons do.
func (db *DB) snapshotEpoch() uint64 {
	return db.epoch.Load()
}

// Installing a version with the writeCtx stamp is the blessed path.
func (db *DB) installVersion(w *writeCtx, row []Value) *rowVersion {
	ver := &rowVersion{row: row}
	ver.beg.Store(w.stamp())
	return ver
}

// Stamping beg with anything else forges a visibility epoch.
func (db *DB) forgeCommitted(row []Value) *rowVersion {
	ver := &rowVersion{row: row}
	ver.beg.Store(db.epoch.Load()) // want `rowVersion\.beg is stamped outside the audited sites`
	return ver
}

// Publishing after the append, from an audited committer, is the commit
// contract.
func (db *DB) execPrepared(installed []*rowVersion) error {
	if _, err := db.durable.logCommit(nil); err != nil {
		return err
	}
	db.publishCommit(installed)
	return nil
}

// Publishing before the append would let a snapshot reader observe a
// commit a crash could erase.
func (db *DB) commitConcurrent(installed []*rowVersion) error {
	db.publishCommit(installed) // want `publishCommit before any WAL append`
	_, err := db.durable.logCommit(nil)
	return err
}

// Publishing with no append in sight is the same violation.
func (db *DB) execLatchedOnce(installed []*rowVersion) {
	db.publishCommit(installed) // want `publishCommit before any WAL append`
}

// Buffering into the transaction log defers the append to Commit, which
// re-checks the ordering there.
func (tx *Tx) Commit(sql string, installed []*rowVersion) {
	tx.logged = append(tx.logged, logStmt{sql: sql})
	tx.db.publishCommit(installed)
}

// Publishing from an unaudited function is rejected even with the append
// in order: every publication site must carry a serialization argument
// (exclusive db.mu, or db.commitMu under shared mu).
func (db *DB) publishRogue(installed []*rowVersion) error {
	if _, err := db.durable.logCommit(nil); err != nil {
		return err
	}
	db.publishCommit(installed) // want `publishCommit called outside the audited committer functions`
	return nil
}

// Replay publishes state that is already in the log; the directive
// documents the one legitimate out-of-order site.
func (db *DB) replay(installed []*rowVersion) {
	//gmlint:ignore mvccepoch recovery publishes records already in the log; there is nothing to append
	db.publishCommit(installed)
}
