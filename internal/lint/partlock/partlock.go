// Package partlock checks that partition locks are released on every
// path out of the function that acquired them.
//
// The batch producers materialize runs of rows under tablePart.mu — one
// acquisition per batch instead of one per row — which makes the hold a
// window the whole exchange stalls behind. A producer that returns early
// (schema-generation bump, filter error, exhaustion) while still holding
// the partition lock deadlocks every writer touching that partition, and
// unlike a leaked file handle nothing ever cleans it up.
//
// The analysis is intraprocedural and walks each function body in source
// order, keeping a stack of outstanding tablePart.mu acquisitions:
// Lock/RLock pushes, Unlock/RUnlock pops (a deferred unlock also pops —
// its runtime meaning is "released on every path out"), and unmatched
// releases are clamped rather than reported, since release-only helpers
// are legitimate. A `return` reached while the stack is non-empty and a
// function end reached while it is non-empty are reported. Function
// literals are analyzed as separate bodies with an empty stack — a
// goroutine neither inherits nor discharges its spawner's locks.
//
// Since per-partition write latching, the package also tracks latch-set
// obligations: a call to Table.acquireLatches or DB.collectLatched leaves
// the caller holding partition write latches (tablePart.w), and the hold
// must be discharged by latchSet.release on every path — with two
// exceptions that encode the latch API's contract. A return that returns
// a *latchSet identifier transfers the hold to the caller (that is how
// collectLatched hands latches to its caller), and, for collectLatched
// only, a return that returns the error identifier the acquiring call
// assigned is the producer's own failure guard: on error collectLatched
// holds nothing, so there is nothing to release.
//
// The source-order model is deliberately linear: an unlock inside one
// branch discharges the obligation for the code after the branch too.
// That under-reports some genuinely leaky shapes but never false-positives
// on the engine's real producers, which is the right trade for a hard CI
// gate.
package partlock

import (
	"go/ast"
	"go/token"

	"genmapper/internal/lint/analysis"
	"genmapper/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "partlock",
	Doc:  "checks that partition locks and write-latch sets are released on all paths",
	Run:  run,
}

// partLocks are the lock fields whose holds must not escape the
// acquiring function. tablePart.mu is the one batch producers take per
// batch; the set is a map so siblings can be added as storage grows.
var partLocks = map[string]string{
	"genmapper/internal/sqldb.tablePart.mu": "tablePart.mu",
}

const sqldbPath = "genmapper/internal/sqldb"

// latchProducers are the calls that leave the caller holding partition
// write latches. The value records whether the producer is conditional:
// collectLatched returns with the latches held only on success, so its
// own error guard (returning the error it assigned) is not a leak.
var latchProducers = map[string]bool{
	sqldbPath + ".Table.acquireLatches": false,
	sqldbPath + ".DB.collectLatched":    true,
}

// latchRelease is the single call that discharges a latch obligation.
const latchRelease = sqldbPath + ".latchSet.release"

// latchOb is one outstanding latch-set obligation.
type latchOb struct {
	pos     token.Pos
	errName string // conditional producers: the assigned error identifier
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			walkBody(pass, fn.Body)
		}
	}
	return nil, nil
}

// walkBody analyzes one body with empty ledgers, queueing nested function
// literals for their own analysis.
func walkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var held []token.Pos  // outstanding tablePart.mu acquisitions, in source order
	var latches []latchOb // outstanding latch-set obligations
	var lits []*ast.FuncLit
	lintutil.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, t)
			return false
		case *ast.CallExpr:
			held = visitCall(pass, t, stack, held)
			latches = visitLatchCall(pass, t, stack, latches)
		case *ast.ReturnStmt:
			for _, pos := range held {
				pass.Reportf(t.Pos(), "return while holding %s (acquired at %s); partition locks must be released on every path",
					lockLabel, pass.Fset.Position(pos))
			}
			latches = checkLatchReturn(pass, t, latches)
		}
		return true
	})
	for _, pos := range held {
		pass.Reportf(pos, "%s acquired here is not released before function end", lockLabel)
	}
	for _, ob := range latches {
		pass.Reportf(ob.pos, "latch set acquired here is not released before function end")
	}
	for _, lit := range lits {
		walkBody(pass, lit.Body)
	}
}

// checkLatchReturn reports a return reached with latch obligations
// outstanding, honoring the two discharging shapes: returning a *latchSet
// identifier transfers the hold to the caller (popping the newest
// obligation, like a release), and a conditional producer's error guard —
// returning the error identifier its acquiring call assigned — is exempt
// without popping, since later paths still owe a release.
func checkLatchReturn(pass *analysis.Pass, ret *ast.ReturnStmt, latches []latchOb) []latchOb {
	transfers := 0
	names := make(map[string]bool)
	for _, r := range ret.Results {
		id, ok := r.(*ast.Ident)
		if !ok {
			continue
		}
		names[id.Name] = true
		if lintutil.NamedKey(pass.TypesInfo.TypeOf(id)) == sqldbPath+".latchSet" {
			transfers++
		}
	}
	for ; transfers > 0 && len(latches) > 0; transfers-- {
		latches = latches[:len(latches)-1]
	}
	for _, ob := range latches {
		if ob.errName != "" && names[ob.errName] {
			continue
		}
		pass.Reportf(ret.Pos(), "return while holding partition write latches (acquired at %s); release the latch set on every path or return it to the caller",
			pass.Fset.Position(ob.pos))
	}
	return latches
}

// visitLatchCall maintains the latch-obligation ledger: producer calls
// push, latchSet.release pops (clamped — release-only helpers are the
// caller's business).
func visitLatchCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node, latches []latchOb) []latchOb {
	_, recvKey, method, ok := lintutil.MethodCall(pass.TypesInfo, call)
	if !ok {
		return latches
	}
	full := recvKey + "." + method
	if full == latchRelease {
		// A deferred release discharges like a deferred unlock: it runs on
		// every path out of the function.
		if len(latches) > 0 {
			latches = latches[:len(latches)-1]
		}
		return latches
	}
	conditional, producer := latchProducers[full]
	if !producer {
		return latches
	}
	ob := latchOb{pos: call.Pos()}
	if conditional {
		ob.errName = assignedErrName(pass, call, stack)
	}
	return append(latches, ob)
}

// assignedErrName returns the name of the error-typed identifier the
// call's enclosing assignment binds, or "" when the result is not
// assigned to one (then no return is exempt and every path owes a
// release or a transfer).
func assignedErrName(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) string {
	if len(stack) == 0 {
		return ""
	}
	asg, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(asg.Rhs) != 1 || asg.Rhs[0] != ast.Expr(call) {
		return ""
	}
	errIdx, _ := lintutil.ErrorResults(pass.TypesInfo, call)
	for _, i := range errIdx {
		if i < len(asg.Lhs) {
			if id, ok := asg.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				return id.Name
			}
		}
	}
	return ""
}

// lockLabel is the diagnostic name; with a single classified lock it is a
// constant, kept separate from partLocks so messages stay stable if the
// set grows.
const lockLabel = "tablePart.mu"

func visitCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node, held []token.Pos) []token.Pos {
	recv, _, method, ok := lintutil.MethodCall(pass.TypesInfo, call)
	if !ok {
		return held
	}
	key, isField := lintutil.FieldKey(pass.TypesInfo, recv)
	if !isField {
		return held
	}
	if _, classified := partLocks[key]; !classified {
		return held
	}
	switch method {
	case "Lock", "RLock":
		// A deferred acquisition is nonsensical; only live ones create an
		// obligation.
		if !insideDefer(stack) {
			held = append(held, call.Pos())
		}
	case "Unlock", "RUnlock":
		// A deferred unlock discharges the newest obligation: it runs on
		// every path out of the function. Unmatched releases are clamped —
		// release-only helpers are the caller's business.
		if len(held) > 0 {
			held = held[:len(held)-1]
		}
	}
	return held
}

func insideDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}
