// Package partlock checks that partition locks are released on every
// path out of the function that acquired them.
//
// The batch producers materialize runs of rows under tablePart.mu — one
// acquisition per batch instead of one per row — which makes the hold a
// window the whole exchange stalls behind. A producer that returns early
// (schema-generation bump, filter error, exhaustion) while still holding
// the partition lock deadlocks every writer touching that partition, and
// unlike a leaked file handle nothing ever cleans it up.
//
// The analysis is intraprocedural and walks each function body in source
// order, keeping a stack of outstanding tablePart.mu acquisitions:
// Lock/RLock pushes, Unlock/RUnlock pops (a deferred unlock also pops —
// its runtime meaning is "released on every path out"), and unmatched
// releases are clamped rather than reported, since release-only helpers
// are legitimate. A `return` reached while the stack is non-empty and a
// function end reached while it is non-empty are reported. Function
// literals are analyzed as separate bodies with an empty stack — a
// goroutine neither inherits nor discharges its spawner's locks.
//
// The source-order model is deliberately linear: an unlock inside one
// branch discharges the obligation for the code after the branch too.
// That under-reports some genuinely leaky shapes but never false-positives
// on the engine's real producers, which is the right trade for a hard CI
// gate.
package partlock

import (
	"go/ast"
	"go/token"

	"genmapper/internal/lint/analysis"
	"genmapper/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "partlock",
	Doc:  "checks that partition locks are released on all paths",
	Run:  run,
}

// partLocks are the lock fields whose holds must not escape the
// acquiring function. tablePart.mu is the one batch producers take per
// batch; the set is a map so siblings can be added as storage grows.
var partLocks = map[string]string{
	"genmapper/internal/sqldb.tablePart.mu": "tablePart.mu",
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			walkBody(pass, fn.Body)
		}
	}
	return nil, nil
}

// walkBody analyzes one body with an empty acquisition stack, queueing
// nested function literals for their own analysis.
func walkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var held []token.Pos // outstanding acquisitions, in source order
	var lits []*ast.FuncLit
	lintutil.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, t)
			return false
		case *ast.CallExpr:
			held = visitCall(pass, t, stack, held)
		case *ast.ReturnStmt:
			for _, pos := range held {
				pass.Reportf(t.Pos(), "return while holding %s (acquired at %s); partition locks must be released on every path",
					lockLabel, pass.Fset.Position(pos))
			}
		}
		return true
	})
	for _, pos := range held {
		pass.Reportf(pos, "%s acquired here is not released before function end", lockLabel)
	}
	for _, lit := range lits {
		walkBody(pass, lit.Body)
	}
}

// lockLabel is the diagnostic name; with a single classified lock it is a
// constant, kept separate from partLocks so messages stay stable if the
// set grows.
const lockLabel = "tablePart.mu"

func visitCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node, held []token.Pos) []token.Pos {
	recv, _, method, ok := lintutil.MethodCall(pass.TypesInfo, call)
	if !ok {
		return held
	}
	key, isField := lintutil.FieldKey(pass.TypesInfo, recv)
	if !isField {
		return held
	}
	if _, classified := partLocks[key]; !classified {
		return held
	}
	switch method {
	case "Lock", "RLock":
		// A deferred acquisition is nonsensical; only live ones create an
		// obligation.
		if !insideDefer(stack) {
			held = append(held, call.Pos())
		}
	case "Unlock", "RUnlock":
		// A deferred unlock discharges the newest obligation: it runs on
		// every path out of the function. Unmatched releases are clamped —
		// release-only helpers are the caller's business.
		if len(held) > 0 {
			held = held[:len(held)-1]
		}
	}
	return held
}

func insideDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}
