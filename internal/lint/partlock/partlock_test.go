package partlock_test

import (
	"testing"

	"genmapper/internal/lint/analysistest"
	"genmapper/internal/lint/partlock"
)

func TestPartlock(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), partlock.Analyzer,
		"genmapper/internal/sqldb")
}
