// Stub of the partition-lock surface of genmapper/internal/sqldb. The
// mutex field is unexported, so leaking and clean acquisitions both live
// here.
package sqldb

import "sync"

type tablePart struct {
	mu   sync.RWMutex
	ids  []int64
	rows map[int64][]int64
}

type batchMsg struct {
	ids []int64
	err error
}

// batchProducerClean mirrors the real batch worker: one acquisition per
// batch, released before the channel send on both the invalidation path
// and the steady-state path.
func batchProducerClean(part *tablePart, gen, cur uint64, ch chan<- batchMsg) {
	for {
		part.mu.RLock()
		if cur != gen {
			part.mu.RUnlock()
			ch <- batchMsg{err: errInvalidated}
			return
		}
		ids := append([]int64(nil), part.ids...)
		part.mu.RUnlock()
		if len(ids) == 0 {
			return
		}
		ch <- batchMsg{ids: ids}
	}
}

// deferredRelease is the other clean shape: the deferred unlock runs on
// every path out, early returns included.
func deferredRelease(part *tablePart, id int64) []int64 {
	part.mu.RLock()
	defer part.mu.RUnlock()
	if part.rows == nil {
		return nil
	}
	return part.rows[id]
}

// releaseOnly helpers discharge a caller's hold; the unmatched unlock is
// clamped, not reported.
func releaseOnly(part *tablePart) {
	part.mu.RUnlock()
}

func earlyReturnLeak(part *tablePart, gen, cur uint64) []int64 {
	part.mu.RLock()
	if cur != gen {
		return nil // want `return while holding tablePart\.mu`
	}
	ids := append([]int64(nil), part.ids...)
	part.mu.RUnlock()
	return ids
}

func endOfBodyLeak(part *tablePart, out *[]int64) {
	part.mu.Lock() // want `tablePart\.mu acquired here is not released before function end`
	*out = append(*out, part.ids...)
}

// goroutineLeak shows function literals are analyzed as their own bodies:
// the spawner is clean, the literal leaks.
func goroutineLeak(part *tablePart, ch chan<- batchMsg) {
	go func() {
		part.mu.RLock()
		if part.rows == nil {
			ch <- batchMsg{err: errInvalidated}
			return // want `return while holding tablePart\.mu`
		}
		part.mu.RUnlock()
	}()
}

// writeLeak: the exclusive flavor is tracked the same way.
func writeLeak(part *tablePart, id int64, row []int64) error {
	part.mu.Lock()
	if part.rows == nil {
		return errInvalidated // want `return while holding tablePart\.mu`
	}
	part.rows[id] = row
	part.mu.Unlock()
	return nil
}

var errInvalidated = errDDL{}

type errDDL struct{}

func (errDDL) Error() string { return "invalidated" }

// ---- latch-set obligations ----

type latchSet struct{ parts []*tablePart }

func (ls *latchSet) release() { ls.parts = nil }

type Table struct{ parts []*tablePart }

type DB struct{}

type writeCtx struct{}

type writePlan struct{ t *Table }

type Value any

func (t *Table) acquireLatches(db *DB, idxs []int) *latchSet {
	return &latchSet{parts: t.parts}
}

// collectLatched itself is clean: the success return transfers the held
// set to the caller, the error paths release first.
func (db *DB) collectLatched(wp *writePlan, vals []Value, w *writeCtx) ([]int64, *latchSet, error) {
	ls := wp.t.acquireLatches(db, nil)
	if vals == nil {
		ls.release()
		return nil, nil, errInvalidated
	}
	return nil, ls, nil
}

// latchedClean mirrors the real latched executor: the producer's error
// guard is exempt (on error nothing is held), every other path releases.
func latchedClean(db *DB, wp *writePlan, vals []Value, w *writeCtx) error {
	ids, ls, err := db.collectLatched(wp, vals, w)
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		ls.release()
		return errInvalidated
	}
	ls.release()
	return nil
}

// latchedDeferred: a deferred release discharges every path out.
func latchedDeferred(db *DB, t *Table) int {
	ls := t.acquireLatches(db, nil)
	defer ls.release()
	return len(ls.parts)
}

// latchedTransfer hands the held set to its caller, which is the
// collectLatched contract, not a leak.
func latchedTransfer(db *DB, t *Table) *latchSet {
	ls := t.acquireLatches(db, nil)
	return ls
}

// latchedLeakReturn forgets the release on the early-out path after the
// error guard; only the guard itself is exempt.
func latchedLeakReturn(db *DB, wp *writePlan, vals []Value, w *writeCtx) error {
	ids, ls, err := db.collectLatched(wp, vals, w)
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		return errInvalidated // want `return while holding partition write latches`
	}
	ls.release()
	return nil
}

// latchedLeakEnd never releases at all.
func latchedLeakEnd(db *DB, t *Table, out *[]int) {
	ls := t.acquireLatches(db, nil) // want `latch set acquired here is not released before function end`
	*out = append(*out, len(ls.parts))
}
