// Stub of the partition-lock surface of genmapper/internal/sqldb. The
// mutex field is unexported, so leaking and clean acquisitions both live
// here.
package sqldb

import "sync"

type tablePart struct {
	mu   sync.RWMutex
	ids  []int64
	rows map[int64][]int64
}

type batchMsg struct {
	ids []int64
	err error
}

// batchProducerClean mirrors the real batch worker: one acquisition per
// batch, released before the channel send on both the invalidation path
// and the steady-state path.
func batchProducerClean(part *tablePart, gen, cur uint64, ch chan<- batchMsg) {
	for {
		part.mu.RLock()
		if cur != gen {
			part.mu.RUnlock()
			ch <- batchMsg{err: errInvalidated}
			return
		}
		ids := append([]int64(nil), part.ids...)
		part.mu.RUnlock()
		if len(ids) == 0 {
			return
		}
		ch <- batchMsg{ids: ids}
	}
}

// deferredRelease is the other clean shape: the deferred unlock runs on
// every path out, early returns included.
func deferredRelease(part *tablePart, id int64) []int64 {
	part.mu.RLock()
	defer part.mu.RUnlock()
	if part.rows == nil {
		return nil
	}
	return part.rows[id]
}

// releaseOnly helpers discharge a caller's hold; the unmatched unlock is
// clamped, not reported.
func releaseOnly(part *tablePart) {
	part.mu.RUnlock()
}

func earlyReturnLeak(part *tablePart, gen, cur uint64) []int64 {
	part.mu.RLock()
	if cur != gen {
		return nil // want `return while holding tablePart\.mu`
	}
	ids := append([]int64(nil), part.ids...)
	part.mu.RUnlock()
	return ids
}

func endOfBodyLeak(part *tablePart, out *[]int64) {
	part.mu.Lock() // want `tablePart\.mu acquired here is not released before function end`
	*out = append(*out, part.ids...)
}

// goroutineLeak shows function literals are analyzed as their own bodies:
// the spawner is clean, the literal leaks.
func goroutineLeak(part *tablePart, ch chan<- batchMsg) {
	go func() {
		part.mu.RLock()
		if part.rows == nil {
			ch <- batchMsg{err: errInvalidated}
			return // want `return while holding tablePart\.mu`
		}
		part.mu.RUnlock()
	}()
}

// writeLeak: the exclusive flavor is tracked the same way.
func writeLeak(part *tablePart, id int64, row []int64) error {
	part.mu.Lock()
	if part.rows == nil {
		return errInvalidated // want `return while holding tablePart\.mu`
	}
	part.rows[id] = row
	part.mu.Unlock()
	return nil
}

var errInvalidated = errDDL{}

type errDDL struct{}

func (errDDL) Error() string { return "invalidated" }
