// Package lint registers the gmlint analyzers. See the individual analyzer
// packages for what each one enforces, and README.md ("Static analysis")
// for how to run and suppress them.
package lint

import (
	"genmapper/internal/lint/analysis"
	"genmapper/internal/lint/atomicgen"
	"genmapper/internal/lint/cursorclose"
	"genmapper/internal/lint/errdrop"
	"genmapper/internal/lint/lockorder"
	"genmapper/internal/lint/mvccepoch"
	"genmapper/internal/lint/partlock"
	"genmapper/internal/lint/walack"
)

// All returns every gmlint analyzer in a stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicgen.Analyzer,
		cursorclose.Analyzer,
		errdrop.Analyzer,
		lockorder.Analyzer,
		mvccepoch.Analyzer,
		partlock.Analyzer,
		walack.Analyzer,
	}
}
