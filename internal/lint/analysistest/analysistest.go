// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations written in the fixtures, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture tree is GOPATH-shaped: testdata/src/<importpath>/*.go. Because
// the loader consults the fixture tree before the real module, fixtures
// may shadow real import paths (e.g. genmapper/internal/sqldb) with small
// stubs, so analyzers that match on fully-qualified type names work
// unchanged against fixture code.
//
// Expectations are `// want` comments on the line the diagnostic is
// reported on:
//
//	w.Append(rec) // want `error from WAL\.Append is discarded`
//
// Each backquoted or double-quoted string is a regexp that must match one
// diagnostic message on that line; diagnostics with no matching
// expectation, and expectations with no matching diagnostic, fail the
// test. Findings from malformed //gmlint:ignore directives are reported
// under the name "gmlint" and are matched the same way.
package analysistest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"genmapper/internal/lint/analysis"
)

// expectation is one `// want` regexp at a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("//\\s*want\\s+(.*)$")
var argRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run loads each fixture package under testdata/src, applies the analyzer,
// and reports mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	loader := analysis.NewLoader(".", testdata)
	pkgs, err := loader.LoadPaths(paths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	findings, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			wants = append(wants, parseWants(t, pkg.Fset, f)...)
		}
	}

	for _, f := range findings {
		if !consume(wants, f) {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}

// consume marks the first unmatched expectation matching the finding.
func consume(wants []*expectation, f analysis.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
			continue
		}
		if w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts the `// want` expectations from one fixture file.
func parseWants(t *testing.T, fset *token.FileSet, file *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			args := argRe.FindAllStringSubmatch(m[1], -1)
			if len(args) == 0 {
				t.Fatalf("%s: `// want` with no quoted regexp", pos)
			}
			for _, a := range args {
				src := a[1]
				if src == "" {
					src = unquoteish(a[2])
				}
				re, err := regexp.Compile(src)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, src, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

// unquoteish undoes the escaping inside a double-quoted want argument.
func unquoteish(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// Testdata returns the conventional fixture root for the calling package.
func Testdata() string {
	return "testdata"
}
