// Stub of the real genmapper/internal/sqldb package. The registered
// counter DB.gen is unexported, so both the accessor and the violations
// live here, exactly as they would in the real package.
package sqldb

import "sync/atomic"

type DB struct {
	gen atomic.Uint64
}

// bumpSchemaGen is the one registered accessor for DB.gen.
func (db *DB) bumpSchemaGen() { db.gen.Add(1) }

func (db *DB) restoreFast() {
	db.gen.Store(0) // want `DB\.gen is mutated outside its accessor bumpSchemaGen`
}

func (db *DB) snapshotGen() uint64 {
	return db.gen.Load() // reads are fine anywhere
}

func (db *DB) resetForTests() {
	//gmlint:ignore atomicgen restore rebuilds the schema wholesale; old generations are unreachable
	db.gen.Store(0)
}
