// An unregistered atomic field: its owner may mutate it freely, everyone
// else may only call its methods.
package counter

import "sync/atomic"

type C struct {
	N atomic.Int64
}

func (c *C) Bump() { c.N.Add(1) } // owner package: fine
