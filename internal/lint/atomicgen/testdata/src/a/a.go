// Cross-package discipline for unregistered atomic fields.
package a

import "counter"

func mutateForeign(c *counter.C) {
	c.N.Add(1) // want `atomic field counter\.C\.N is mutated outside its declaring package`
}

func readForeign(c *counter.C) int64 {
	return c.N.Load() // reads through the atomic API are fine
}

func copyValue(c *counter.C) {
	v := c.N // want `atomic field counter\.C\.N is used as a plain value`
	_ = v
}

func escapeAddr(c *counter.C) {
	p := &c.N // want `address of atomic field counter\.C\.N escapes`
	_ = p
}
