// Package atomicgen enforces the discipline around sync/atomic struct
// fields, above all the schema-generation counters (`sqldb.DB.gen`,
// `gam.Repo.gen`) that cursors poll lock-free.
//
// Three rules:
//
//  1. Registered generation counters may only be mutated inside their
//     accessor methods (`bumpSchemaGen`, `bumpGen`); every other
//     Store/Add/Swap/CompareAndSwap is reported.
//  2. Any atomic field may only be mutated from its declaring package —
//     cross-package writes bypass whatever protocol the owner maintains.
//  3. An atomic field must not be copied, compared or address-escaped as a
//     plain value; only its own methods may touch it.
package atomicgen

import (
	"go/ast"
	"strings"

	"genmapper/internal/lint/analysis"
	"genmapper/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicgen",
	Doc:  "restricts mutation of atomic generation counters to their accessor methods",
	Run:  run,
}

// accessors maps a registered atomic field to the only functions allowed to
// mutate it.
var accessors = map[string]map[string]bool{
	"genmapper/internal/sqldb.DB.gen": {"bumpSchemaGen": true},
	"genmapper/internal/gam.Repo.gen": {"bumpGen": true},
}

// mutators are the sync/atomic methods that write.
var mutators = map[string]bool{
	"Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "And": true, "Or": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	lintutil.WalkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		key, isField := lintutil.FieldKey(pass.TypesInfo, sel)
		if !isField || !isAtomicField(pass, sel) {
			return true
		}
		short := key[strings.LastIndex(key, "/")+1:]
		switch use := useOf(sel, stack); use {
		case useMethodCall:
			method := methodName(stack)
			if !mutators[method] {
				return false // Load etc: always fine
			}
			if allowed, registered := accessors[key]; registered && !allowed[fn.Name.Name] {
				names := accessorNames(allowed)
				pass.Reportf(sel.Pos(), "%s is mutated outside its accessor %s; generation bumps must go through the accessor so schema changes stay totally ordered", short, names)
			} else if !registered && !declaredHere(pass, key) {
				pass.Reportf(sel.Pos(), "atomic field %s is mutated outside its declaring package", short)
			}
			return false
		case useAddr:
			pass.Reportf(sel.Pos(), "address of atomic field %s escapes; all access must go through its atomic methods", short)
			return false
		case useValue:
			pass.Reportf(sel.Pos(), "atomic field %s is used as a plain value; use its Load/Store methods", short)
			return false
		}
		return true
	})
}

type use int

const (
	useMethodCall use = iota // sel.Method(...)
	useAddr                  // &sel
	useValue                 // anything else: copy, compare, plain assign
)

// useOf classifies how the field selector is consumed by its parents.
func useOf(sel *ast.SelectorExpr, stack []ast.Node) use {
	if len(stack) == 0 {
		return useValue
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		// sel.Something — a method call like gen.Load() if the grandparent
		// is a call on that selector.
		if p.X == ast.Expr(sel) && len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == ast.Expr(p) {
				return useMethodCall
			}
		}
		return useValue
	case *ast.UnaryExpr:
		if p.Op.String() == "&" {
			return useAddr
		}
	}
	return useValue
}

// methodName extracts the method identifier from a useMethodCall stack.
func methodName(stack []ast.Node) string {
	p := stack[len(stack)-1].(*ast.SelectorExpr)
	return p.Sel.Name
}

// declaredHere reports whether the field's owning type lives in the package
// being analyzed.
func declaredHere(pass *analysis.Pass, key string) bool {
	return strings.HasPrefix(key, pass.Pkg.Path()+".")
}

// isAtomicField reports whether the selector selects a field whose type is
// declared in sync/atomic.
func isAtomicField(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	t := lintutil.FieldType(pass.TypesInfo, sel)
	if t == nil {
		return false
	}
	nk := lintutil.NamedKey(t)
	return strings.HasPrefix(nk, "sync/atomic.")
}

func accessorNames(set map[string]bool) string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	if len(names) == 1 {
		return names[0]
	}
	strs := strings.Join(names, " or ")
	return strs
}
