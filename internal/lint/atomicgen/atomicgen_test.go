package atomicgen_test

import (
	"testing"

	"genmapper/internal/lint/analysistest"
	"genmapper/internal/lint/atomicgen"
)

func TestAtomicgen(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), atomicgen.Analyzer,
		"genmapper/internal/sqldb", "counter", "a")
}
