// Negative fixtures: closes and hand-offs the analyzer must accept.
package b

import sqldb "genmapper/internal/sqldb"

// The canonical consumer: err-guarded open, deferred close.
func deferClose(db *sqldb.DB) error {
	cur, err := db.QueryCursor("SELECT 1")
	if err != nil {
		return err
	}
	defer cur.Close()
	for {
		row, err := cur.Next()
		if err != nil {
			return err
		}
		if row == nil {
			return nil
		}
	}
}

// Direct close with only err-guarded returns in between.
func directClose(db *sqldb.DB) error {
	cur, err := db.QueryCursor("SELECT 1")
	if err != nil {
		return err
	}
	return cur.Close()
}

// Returning the cursor hands the close obligation to the caller.
func open(db *sqldb.DB) (sqldb.Cursor, error) {
	cur, err := db.QueryCursor("SELECT 1")
	if err != nil {
		return nil, err
	}
	return cur, nil
}

// Passing the cursor to another function is a hand-off too.
func give(db *sqldb.DB, sink func(sqldb.Cursor) error) error {
	cur, err := db.QueryCursor("SELECT 1")
	if err != nil {
		return err
	}
	return sink(cur)
}

// Storing the cursor moves the obligation to the struct's owner.
type stream struct{ cur sqldb.Cursor }

func hold(db *sqldb.DB, s *stream) error {
	cur, err := db.QueryCursor("SELECT 1")
	if err != nil {
		return err
	}
	s.cur = cur
	return nil
}

// The directive documents a deliberate leak (e.g. process exits next).
func intentional(db *sqldb.DB) {
	//gmlint:ignore cursorclose probe for plan errors only; the process exits before iterating
	cur, _ := db.QueryCursor("SELECT 1")
	cur.Next()
}
