// Stub of the cursor surface of genmapper/internal/sqldb.
package sqldb

type Value any

type Cursor interface {
	Columns() []string
	Next() ([]Value, error)
	Close() error
}

type DB struct{}

func (db *DB) QueryCursor(sql string, args ...any) (Cursor, error) { return nil, nil }
