// Positive fixtures: leaked cursors the analyzer must catch.
package a

import sqldb "genmapper/internal/sqldb"

func leak(db *sqldb.DB) error {
	cur, err := db.QueryCursor("SELECT 1") // want `cursor returned by db\.QueryCursor is never closed`
	if err != nil {
		return err
	}
	_, err = cur.Next()
	return err
}

func discard(db *sqldb.DB) {
	db.QueryCursor("SELECT 1") // want `cursor returned by db\.QueryCursor is discarded without Close`
}

func blanked(db *sqldb.DB) {
	_, _ = db.QueryCursor("SELECT 1") // want `cursor returned by db\.QueryCursor is discarded without Close`
}

func earlyReturn(db *sqldb.DB, n int) error {
	cur, err := db.QueryCursor("SELECT 1")
	if err != nil {
		return err
	}
	if n > 0 {
		return nil // want `return may leak the cursor opened by db\.QueryCursor`
	}
	return cur.Close()
}
