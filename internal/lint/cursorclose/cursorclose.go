// Package cursorclose checks that every streaming cursor obtained from the
// engine is closed on all paths or explicitly handed off.
//
// A cursor produced by QueryCursor pins resources — on parallel plans a
// whole worker pool — until Close runs, so a leaked cursor is a goroutine
// leak. For each call whose result is (or implements) sqldb.Cursor the
// analyzer requires, within the same function, one of:
//
//   - a Close call on the cursor variable (deferred or direct);
//   - a hand-off: the cursor is returned, sent on a channel, stored in a
//     struct/slice/map, or passed to another function, which transfers
//     the close obligation to the receiver.
//
// When the close is direct (not deferred), return statements between the
// open and the close are flagged unless they are guarded by the open's own
// error result — the `if err != nil { return err }` idiom.
package cursorclose

import (
	"go/ast"
	"go/token"
	"go/types"

	"genmapper/internal/lint/analysis"
	"genmapper/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "cursorclose",
	Doc:  "requires cursors to be closed on all paths or handed off",
	Run:  run,
}

const sqldbPath = "genmapper/internal/sqldb"

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBody(pass, fn.Body)
		}
	}
	return nil, nil
}

// checkBody finds cursor-producing calls in one function body (function
// literals are analyzed as their own bodies) and tracks each cursor.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	lintutil.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && len(stack) > 0 {
			checkBody(pass, n.(*ast.FuncLit).Body)
			return false
		}
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if idx := cursorResults(pass, call); len(idx) > 0 {
					pass.Reportf(call.Pos(), "cursor returned by %s is discarded without Close", callName(call))
					return false
				}
			}
		case *ast.AssignStmt:
			checkAssign(pass, body, st)
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, body *ast.BlockStmt, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	idx := cursorResults(pass, call)
	if len(idx) == 0 {
		return
	}
	errObj := assignErrObj(pass, st, call)
	for _, i := range idx {
		if i >= len(st.Lhs) {
			return // single-value context feeding a call etc.
		}
		id, ok := st.Lhs[i].(*ast.Ident)
		if !ok {
			return // stored into a field/index: a hand-off
		}
		if id.Name == "_" {
			pass.Reportf(st.Pos(), "cursor returned by %s is discarded without Close", callName(call))
			continue
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		trackCursor(pass, body, st, call, obj, errObj)
	}
}

// cursorUse summarizes how one cursor variable is consumed.
type cursorUse struct {
	closePos token.Pos // first Close call, or NoPos
	deferred bool      // that Close is deferred
	escaped  bool      // handed off: returned, passed, stored, sent
	returns  []returnSite
}

type returnSite struct {
	pos     token.Pos
	end     token.Pos
	guarded bool // inside an if whose condition tests the open's error
}

func trackCursor(pass *analysis.Pass, body *ast.BlockStmt, open *ast.AssignStmt, call *ast.CallExpr, obj, errObj types.Object) {
	var u cursorUse
	lintutil.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch t := n.(type) {
		case *ast.Ident:
			if pass.TypesInfo.Uses[t] != obj || t.Pos() <= open.End() {
				return true
			}
			classifyUse(t, stack, &u)
		case *ast.ReturnStmt:
			if t.Pos() > open.End() {
				u.returns = append(u.returns, returnSite{pos: t.Pos(), end: t.End(), guarded: errGuarded(pass, stack, errObj)})
			}
		}
		return true
	})

	if u.escaped {
		return
	}
	if u.closePos == token.NoPos {
		pass.Reportf(open.Pos(), "cursor returned by %s is never closed; close it on every path or hand it off", callName(call))
		return
	}
	// Direct (and even deferred) closes leave a window between the open and
	// the close statement where an early return leaks the cursor. Returns
	// guarded by the open's own error are the nil-cursor path and are fine.
	for _, r := range u.returns {
		if r.end >= u.closePos {
			continue // `return cur.Close()` and later returns: the close runs
		}
		if !r.guarded {
			pass.Reportf(r.pos, "return may leak the cursor opened by %s before it is closed", callName(call))
		}
	}
}

// classifyUse updates u for one appearance of the cursor variable.
func classifyUse(id *ast.Ident, stack []ast.Node, u *cursorUse) {
	if len(stack) == 0 {
		return
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X != ast.Expr(id) {
			return
		}
		if p.Sel.Name != "Close" {
			return // Next/Columns etc: plain use
		}
		// cur.Close — only counts when actually called.
		if len(stack) >= 2 {
			if c, ok := stack[len(stack)-2].(*ast.CallExpr); ok && c.Fun == ast.Expr(p) {
				if u.closePos == token.NoPos || c.Pos() < u.closePos {
					u.closePos = c.Pos()
					u.deferred = isDeferred(stack)
				}
				return
			}
		}
		// cur.Close passed as a method value: treat as a hand-off.
		u.escaped = true
	case *ast.CallExpr:
		for _, a := range p.Args {
			if a == ast.Expr(id) {
				u.escaped = true
				return
			}
		}
	case *ast.ReturnStmt, *ast.SendStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.IndexExpr:
		u.escaped = true
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			u.escaped = true
		}
	case *ast.AssignStmt:
		for _, r := range p.Rhs {
			if r == ast.Expr(id) {
				u.escaped = true // aliased or stored: obligation moves
				return
			}
		}
	case *ast.BinaryExpr:
		// comparisons like cur != nil: plain use
	}
}

func isDeferred(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// errGuarded reports whether the return site sits inside an if statement
// whose condition mentions the error object returned alongside the cursor.
func errGuarded(pass *analysis.Pass, stack []ast.Node, errObj types.Object) bool {
	if errObj == nil {
		return false
	}
	for _, n := range stack {
		ifst, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifst.Cond, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == errObj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// assignErrObj returns the object bound to the call's error result in the
// open assignment, if any.
func assignErrObj(pass *analysis.Pass, st *ast.AssignStmt, call *ast.CallExpr) types.Object {
	errIdx, n := lintutil.ErrorResults(pass.TypesInfo, call)
	if len(errIdx) != 1 || len(st.Lhs) != n {
		return nil
	}
	id, ok := st.Lhs[errIdx[0]].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// cursorResults returns the result indices of the call whose type is the
// sqldb Cursor interface or a named type implementing it.
func cursorResults(pass *analysis.Pass, call *ast.CallExpr) []int {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		var idx []int
		for i := 0; i < t.Len(); i++ {
			if isCursor(t.At(i).Type()) {
				idx = append(idx, i)
			}
		}
		return idx
	default:
		if isCursor(tv.Type) {
			return []int{0}
		}
	}
	return nil
}

// callName renders the called expression for diagnostics ("db.QueryCursor").
func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	case *ast.Ident:
		return f.Name
	}
	return "the call"
}

// isCursor matches the sqldb.Cursor interface itself and any named sqldb
// type that implements it (a future concrete Open*Cursor result).
func isCursor(t types.Type) bool {
	n, ok := lintutil.Deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != sqldbPath {
		return false
	}
	if obj.Name() == "Cursor" {
		return true
	}
	curObj := obj.Pkg().Scope().Lookup("Cursor")
	if curObj == nil {
		return false
	}
	iface, ok := curObj.Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}
