package cursorclose_test

import (
	"testing"

	"genmapper/internal/lint/analysistest"
	"genmapper/internal/lint/cursorclose"
)

func TestCursorclose(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), cursorclose.Analyzer, "a", "b")
}
