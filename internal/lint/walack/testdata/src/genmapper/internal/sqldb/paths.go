package sqldb

// A mutation with no logging step anywhere in the function cannot be
// replayed after a crash.
func (db *DB) execUnlogged(sql string) (Result, error) {
	res, err := db.executeWrite(sql) // want `executeWrite without a WAL append on this path`
	return res, err
}

// Logging through the durability layer satisfies the rule.
func (db *DB) execLogged(sql string) (Result, error) {
	res, err := db.executeWrite(sql)
	if err != nil {
		return Result{}, err
	}
	if _, err := db.durable.logCommit(nil); err != nil {
		return Result{}, err
	}
	return res, nil
}

// Buffering into the transaction's log satisfies it too: Commit appends.
func (tx *Tx) execBuffered(sql string) (Result, error) {
	res, err := tx.db.executeWrite(sql)
	tx.logged = append(tx.logged, logStmt{sql: sql})
	return res, err
}

// Recovery replays records that are already in the log: the one legitimate
// unlogged mutation, documented by the directive.
func (db *DB) replay(sql string) error {
	//gmlint:ignore walack recovery replays records already in the log; re-appending would double them
	_, err := db.executeWrite(sql)
	return err
}

type execReply struct {
	Res Result
	Err error
}

// Acknowledging before the append tells the client a commit is durable
// when it is not.
func (db *DB) ackEarly(res Result, ack chan Result) {
	ack <- res // want `commit result acknowledged before any WAL append`
	if _, err := db.durable.logCommit(nil); err != nil {
		return
	}
}

// Append first, acknowledge after: the group-commit contract.
func (db *DB) ackAfterLog(res Result, ack chan execReply) {
	lsn, err := db.durable.logCommit(nil)
	if err != nil {
		ack <- execReply{Err: err}
		return
	}
	if err := db.durable.wait(lsn); err != nil {
		ack <- execReply{Err: err}
		return
	}
	ack <- execReply{Res: res}
}

// A goroutine body is its own commit path: the spawner's append does not
// cover an ack sent from a closure that never logs... but a closure that
// only forwards an already-logged result must opt out explicitly.
func (db *DB) forwardAsync(res Result, ack chan Result) {
	if _, err := db.durable.logCommit(nil); err != nil {
		return
	}
	go func() {
		//gmlint:ignore walack the enclosing function appended before spawning this forwarder
		ack <- res
	}()
}
