// Stub of the commit-path surface of genmapper/internal/sqldb. The
// analyzer matches fully-qualified names, so the fixture scenarios live in
// this shadowed package just like the real commit paths do.
package sqldb

type Result struct{ RowsAffected int }

type logStmt struct{ sql string }

type durability struct{}

func (d *durability) logCommit(stmts []logStmt) (uint64, error) { return 0, nil }
func (d *durability) wait(lsn uint64) error                     { return nil }

type DB struct{ durable *durability }

func (db *DB) executeWrite(sql string) (Result, error) { return Result{}, nil }

type Tx struct {
	db     *DB
	logged []logStmt
}
