// Package walack enforces write-ahead ordering on commit paths: state is
// only mutated after the mutation is bound for the WAL, and a
// client-visible acknowledgement is only produced after the log append.
//
// Two rules, both intraprocedural over internal/sqldb types:
//
//  1. A function that calls DB.executeWrite (the one place table state
//     mutates) must also log that write — by calling logCommit, appending
//     to a transaction's `logged` buffer, or calling wal Append directly.
//     A mutation with no logging step in sight cannot be replayed after a
//     crash.
//  2. A send of a Result (or of a struct carrying one) on a channel — the
//     shape every client-ack path takes — must appear after a logCommit /
//     Append / durability-wait call in the same function. Acknowledging
//     before logging tells the client a commit is durable when it is not.
package walack

import (
	"go/ast"
	"go/token"
	"go/types"

	"genmapper/internal/lint/analysis"
	"genmapper/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "walack",
	Doc:  "requires commit-path mutations and acks to be preceded by a WAL append",
	Run:  run,
}

const sqldbPath = "genmapper/internal/sqldb"

// logCalls are the method names that constitute "this write is logged".
var logCalls = map[string]bool{
	"genmapper/internal/sqldb.durability.logCommit": true,
	"genmapper/internal/wal.WAL.Append":             true,
	"genmapper/internal/sqldb.durability.wait":      true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBody(pass, fn.Body)
		}
	}
	return nil, nil
}

type funcFacts struct {
	// position of the first logging call, or NoPos
	firstLog token.Pos
	// true if the function records into a Tx.logged buffer
	recordsTx bool
	// executeWrite call sites
	writes []*ast.CallExpr
	// channel sends of Result-shaped values
	acks []ast.Node
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var facts funcFacts
	var lits []*ast.FuncLit
	lintutil.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			// A goroutine or callback body is its own commit path: the
			// spawner's append happens-before nothing inside it.
			lits = append(lits, t)
			return false
		case *ast.CallExpr:
			if _, recvKey, name, ok := lintutil.MethodCall(pass.TypesInfo, t); ok {
				full := recvKey + "." + name
				if logCalls[full] && facts.firstLog == token.NoPos {
					facts.firstLog = t.Pos()
				}
				if full == sqldbPath+".DB.executeWrite" {
					facts.writes = append(facts.writes, t)
				}
			}
		case *ast.SelectorExpr:
			if key, ok := lintutil.FieldKey(pass.TypesInfo, t); ok && key == sqldbPath+".Tx.logged" {
				facts.recordsTx = true
			}
		case *ast.SendStmt:
			if carriesResult(pass.TypesInfo, t.Value) {
				facts.acks = append(facts.acks, t)
			}
		}
		return true
	})

	logged := facts.firstLog != token.NoPos || facts.recordsTx
	for _, w := range facts.writes {
		if !logged {
			pass.Reportf(w.Pos(), "executeWrite without a WAL append on this path; log the commit (logCommit / tx.logged) before mutating state or add //gmlint:ignore walack <why>")
		}
	}
	for _, a := range facts.acks {
		if facts.firstLog == token.NoPos || a.Pos() < facts.firstLog {
			pass.Reportf(a.Pos(), "commit result acknowledged before any WAL append in this function; the client must only see a result after the log write")
		}
	}
	for _, lit := range lits {
		checkBody(pass, lit.Body)
	}
}

// carriesResult reports whether the sent value's type is sqldb.Result, a
// pointer to it, or a struct with a field of that type (one level deep).
func carriesResult(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	return isResultShaped(tv.Type, 0)
}

func isResultShaped(t types.Type, depth int) bool {
	if lintutil.NamedKey(t) == sqldbPath+".Result" {
		return true
	}
	if depth > 0 {
		return false
	}
	if st, ok := lintutil.Deref(t).Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if isResultShaped(st.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}
