package walack_test

import (
	"testing"

	"genmapper/internal/lint/analysistest"
	"genmapper/internal/lint/walack"
)

func TestWalack(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), walack.Analyzer,
		"genmapper/internal/sqldb")
}
