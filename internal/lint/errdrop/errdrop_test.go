package errdrop_test

import (
	"testing"

	"genmapper/internal/lint/analysistest"
	"genmapper/internal/lint/errdrop"
)

func TestErrdrop(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), errdrop.Analyzer, "a", "b")
}
