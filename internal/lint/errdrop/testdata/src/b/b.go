// Negative fixtures: every idiom the analyzer must leave alone.
package b

import (
	"os"

	"genmapper/internal/wal"
)

func clean(w *wal.WAL, f wal.File) error {
	if _, err := w.Append(nil); err != nil {
		return err
	}
	defer f.Close() // deferred cleanup is the accepted idiom
	if err := f.Sync(); err != nil {
		f.Close() // best-effort close while propagating the sync error
		return err
	}
	//gmlint:ignore errdrop rotation is advisory; the next append retries it
	_ = w.Rotate()
	return os.Remove("x")
}

func cleanupBeforeBreak(files []wal.File) {
	for _, f := range files {
		if f == nil {
			continue
		}
		f.Close() // error path ends in a branch: best-effort cleanup
		break
	}
}
