// Stub of the real genmapper/internal/wal package: the analyzer matches on
// fully-qualified type names, so shadowing the import path is enough.
package wal

type WAL struct{}

func (w *WAL) Append(b []byte) (uint64, error) { return 0, nil }
func (w *WAL) Durable(lsn uint64) error        { return nil }
func (w *WAL) Rotate() error                   { return nil }

type File interface {
	Sync() error
	Close() error
}
