// Positive fixtures: every discarded error this analyzer must catch.
package a

import (
	"os"

	"genmapper/internal/wal"
)

type conn struct{}

func (conn) Close() error { return nil }

func drops(w *wal.WAL, f wal.File, c conn) {
	w.Append(nil)        // want `error from WAL\.Append is discarded`
	_, _ = w.Append(nil) // want `error from WAL\.Append is assigned to _`
	_ = w.Rotate()       // want `error from WAL\.Rotate is assigned to _`
	f.Sync()             // want `error from File\.Sync is discarded`
	c.Close()            // want `error from conn\.Close is discarded`
	os.Remove("x")       // want `error from os\.Remove is discarded`
}

func dropInLoopWithoutReturn(sys []conn) {
	for _, c := range sys {
		c.Close() // want `error from conn\.Close is discarded`
	}
}
