// Package errdrop flags discarded errors from WAL, IO and Close calls.
//
// The engine's durability story depends on error results that are easy to
// throw away: wal.Append/Durable/Rotate, file Sync/Close, os.Remove during
// segment pruning. staticcheck's defaults let an `f.Close()` statement
// through; this analyzer does not. A drop is either the call standing alone
// as a statement or an error result assigned to `_`.
//
// Two idioms stay legal without a directive:
//
//   - `defer f.Close()` — the deferred-cleanup convention;
//   - a Close/Remove drop inside a conditional error path that ends in a
//     return (best-effort cleanup while propagating an earlier error).
//
// Everything else needs `//gmlint:ignore errdrop <why>`.
package errdrop

import (
	"go/ast"
	"strings"

	"genmapper/internal/lint/analysis"
	"genmapper/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded errors from WAL, IO and Close calls",
	Run:  run,
}

// closeLike methods are checked on any receiver; their single error result
// is the only signal the resource was released cleanly.
var closeLike = map[string]bool{"Close": true, "Sync": true, "Flush": true}

// osFuncs are package-level functions whose error must be checked.
var osFuncs = map[string]bool{
	"os.Remove":    true,
	"os.RemoveAll": true,
	"os.Rename":    true,
}

// dbMethods are durability-relevant DB methods outside the wal package.
var dbMethods = map[string]bool{
	"genmapper/internal/sqldb.DB.Checkpoint": true,
	"genmapper/internal/sqldb.DB.Save":       true,
	"genmapper/internal/sqldb.DB.Restore":    true,
	"genmapper/internal/sqldb.DB.Dump":       true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkFunc(pass, fn.Body)
			}
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	lintutil.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			// defer f.Close() is the accepted cleanup idiom, and a
			// goroutine's call expression is not a discard site itself.
			return false
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, watched := watchedCall(pass, call); watched {
				if errorPathExempt(name, st, stack) {
					return true
				}
				pass.Reportf(call.Pos(), "error from %s is discarded; handle it or add //gmlint:ignore errdrop <why>", name)
			}
			return true
		case *ast.AssignStmt:
			checkAssign(pass, st)
			return true
		}
		return true
	})
}

// checkAssign flags `_ = call()` / `x, _ := call()` where the blanked
// position is a watched call's error result.
func checkAssign(pass *analysis.Pass, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, watched := watchedCall(pass, call)
	if !watched {
		return
	}
	errIdx, n := lintutil.ErrorResults(pass.TypesInfo, call)
	if len(errIdx) == 0 || len(st.Lhs) != n {
		return
	}
	for _, i := range errIdx {
		if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(st.Pos(), "error from %s is assigned to _; handle it or add //gmlint:ignore errdrop <why>", name)
			return
		}
	}
}

// watchedCall reports whether the call's error result is one this analyzer
// insists on, and returns a display name for it.
func watchedCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	errIdx, _ := lintutil.ErrorResults(pass.TypesInfo, call)
	if len(errIdx) == 0 {
		return "", false
	}
	if _, recvKey, method, ok := lintutil.MethodCall(pass.TypesInfo, call); ok {
		name := shortType(recvKey) + "." + method
		if strings.HasPrefix(recvKey, "genmapper/internal/wal.") {
			return name, true
		}
		if closeLike[method] {
			return name, true
		}
		if dbMethods[recvKey+"."+method] {
			return name, true
		}
		return "", false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil {
			full := obj.Pkg().Path() + "." + obj.Name()
			if osFuncs[full] {
				return full, true
			}
		}
	}
	return "", false
}

// shortType trims the import path off a receiver key for messages.
func shortType(recvKey string) string {
	if i := strings.LastIndex(recvKey, "/"); i >= 0 {
		recvKey = recvKey[i+1:]
	}
	if i := strings.Index(recvKey, "."); i >= 0 {
		recvKey = recvKey[i+1:]
	}
	return recvKey
}

// errorPathExempt reports whether a Close/Remove drop is best-effort
// cleanup on a conditional error path: the statement sits inside an if (or
// similar nested block, not the function body itself) whose block goes on
// to return or panic. In that position the original error is being
// propagated and the cleanup result has nowhere useful to go.
func errorPathExempt(name string, st *ast.ExprStmt, stack []ast.Node) bool {
	short := name[strings.LastIndex(name, ".")+1:]
	if !closeLike[short] && !osFuncs[name] {
		return false
	}
	// stack[0] is the function body; require at least one intervening
	// block so top-level drops are never exempt.
	var block *ast.BlockStmt
	for i := len(stack) - 1; i > 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			block = b
			break
		}
	}
	if block == nil {
		return false
	}
	seen := false
	for _, s := range block.List {
		if s == ast.Stmt(st) {
			seen = true
			continue
		}
		if !seen {
			continue
		}
		switch t := s.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return true
		case *ast.ExprStmt:
			if c, ok := t.X.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
	}
	return false
}
