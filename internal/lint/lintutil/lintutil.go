// Package lintutil holds the small type-identification helpers the gmlint
// analyzers share: resolving a selector to the "pkgpath.Type.field" key of
// the struct field it selects, splitting method calls into receiver and
// name, and a parent-tracking AST walk.
package lintutil

import (
	"go/ast"
	"go/types"
)

// Deref unwraps one level of pointer.
func Deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// NamedKey returns "pkgpath.TypeName" for a (possibly pointer-to) named
// type, or "" when t is not named or predeclared.
func NamedKey(t types.Type) string {
	n, ok := Deref(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// FieldKey resolves a selector expression that selects a struct field to
// the key "pkgpath.OwnerType.fieldName" (the owner is the receiver's named
// type, so promoted fields report the outermost type). The boolean is false
// for anything that is not a field selection.
func FieldKey(info *types.Info, e ast.Expr) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return "", false
	}
	owner := NamedKey(s.Recv())
	if owner == "" {
		return "", false
	}
	return owner + "." + s.Obj().Name(), true
}

// FieldType returns the selected struct field's type for a field selector,
// or nil.
func FieldType(info *types.Info, e ast.Expr) types.Type {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().Type()
}

// MethodCall splits a call on a method value (x.M(...)) into the receiver
// expression, the receiver's named-type key and the method name. ok is
// false for plain function calls and non-method selections.
func MethodCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, recvKey, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return nil, "", "", false
	}
	key := NamedKey(s.Recv())
	if key == "" {
		return nil, "", "", false
	}
	return sel.X, key, sel.Sel.Name, true
}

// WalkStack traverses the AST depth-first in source order, calling fn with
// every node and the stack of its ancestors (outermost first, not
// including the node itself). Returning false skips the node's children.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
			return true
		}
		return false
	})
}

// ErrorResults returns the indices of a call's results whose type is the
// predeclared error interface; n is the total result count.
func ErrorResults(info *types.Info, call *ast.CallExpr) (idx []int, n int) {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil, 0
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return nil, 0
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			idx = append(idx, i)
		}
	}
	return idx, res.Len()
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}
