package genmapper

// One benchmark family per experiment of DESIGN.md §4 (E1–E12). The gmbench
// command prints the paper-style tables; these testing.B benches measure
// the same code paths so `go test -bench=.` regenerates every number.

import (
	"fmt"
	"strings"
	"testing"

	"genmapper/internal/baseline/srs"
	"genmapper/internal/baseline/star"
	"genmapper/internal/eav"
	"genmapper/internal/gam"
	"genmapper/internal/gen"
	"genmapper/internal/importer"
	"genmapper/internal/ops"
	"genmapper/internal/parser"
	"genmapper/internal/profile"
	"genmapper/internal/sqldb"
)

// benchUniverse caches one imported universe across benchmarks (importing
// per-iteration would dominate every measurement).
var benchState struct {
	scale float64
	uni   *gen.Universe
	sys   *System
}

const benchScale = 0.005

func benchSystem(b *testing.B) (*System, *gen.Universe) {
	b.Helper()
	if benchState.sys != nil && benchState.scale == benchScale {
		return benchState.sys, benchState.uni
	}
	u := gen.NewUniverse(gen.Config{Seed: 1, Scale: benchScale})
	sys, err := New()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.ImportUniverse(u, ImportOptions{DeriveSubsumed: true}, nil); err != nil {
		b.Fatal(err)
	}
	benchState.scale, benchState.uni, benchState.sys = benchScale, u, sys
	return sys, u
}

// ---------------------------------------------------------------------------
// E0 — SQL engine substrate: the repository's hot statements through the
// prepared-statement cache vs the seed parse-per-call behavior.

func BenchmarkRepoHotStatementCached(b *testing.B) {
	sys, _ := benchSystem(b)
	repo := sys.Repo()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj, err := repo.Object(gam.ObjectID(i%1000 + 1))
		if err != nil {
			b.Fatal(err)
		}
		if obj == nil {
			b.Fatal("missing object")
		}
	}
}

func BenchmarkRepoHotStatementParsePerCall(b *testing.B) {
	sys, _ := benchSystem(b)
	repo := sys.Repo()
	sys.DB().SetStmtCacheCapacity(0)
	defer sys.DB().SetStmtCacheCapacity(sqldb.DefaultStmtCacheCapacity)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj, err := repo.Object(gam.ObjectID(i%1000 + 1))
		if err != nil {
			b.Fatal(err)
		}
		if obj == nil {
			b.Fatal("missing object")
		}
	}
}

// ---------------------------------------------------------------------------
// E1 — Table 1: Parse step

const table1Record = `>>353
NAME: adenine phosphoribosyltransferase
HUGO: APRT | adenine phosphoribosyltransferase
LOCATION: 16q24
ENZYME: 2.4.2.7
GO: GO:0009116 | nucleoside metabolism
OMIM: 102600
UNIGENE: Hs.28914
`

func BenchmarkTable1Parse(b *testing.B) {
	info := eav.SourceInfo{Name: "LocusLink", Content: "gene"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse("locuslink", strings.NewReader(table1Record), info); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E2 — Table 2: simple operations at three mapping sizes

func table2Mapping(b *testing.B, n int) (*gam.Repo, *ops.Mapping) {
	b.Helper()
	repo, err := gam.Open(sqldb.NewDB())
	if err != nil {
		b.Fatal(err)
	}
	s, _, _ := repo.EnsureSource(gam.Source{Name: "S"})
	t, _, _ := repo.EnsureSource(gam.Source{Name: "T"})
	sSpecs := make([]gam.ObjectSpec, n)
	tSpecs := make([]gam.ObjectSpec, n)
	for i := 0; i < n; i++ {
		sSpecs[i] = gam.ObjectSpec{Accession: fmt.Sprintf("s%d", i)}
		tSpecs[i] = gam.ObjectSpec{Accession: fmt.Sprintf("t%d", i)}
	}
	sIDs, _, err := repo.EnsureObjects(s.ID, sSpecs)
	if err != nil {
		b.Fatal(err)
	}
	tIDs, _, err := repo.EnsureObjects(t.ID, tSpecs)
	if err != nil {
		b.Fatal(err)
	}
	rel, _, _ := repo.EnsureSourceRel(s.ID, t.ID, gam.RelFact)
	assocs := make([]gam.Assoc, n)
	for i := 0; i < n; i++ {
		assocs[i] = gam.Assoc{Object1: sIDs[i], Object2: tIDs[(i*7)%n]}
	}
	if _, err := repo.AddAssociations(rel, assocs, false); err != nil {
		b.Fatal(err)
	}
	m, err := ops.Map(repo, s.ID, t.ID)
	if err != nil {
		b.Fatal(err)
	}
	return repo, m
}

func benchTable2Size(b *testing.B, n int) {
	repo, m := table2Mapping(b, n)
	s := repo.SourceByName("S")
	t := repo.SourceByName("T")
	dom := ops.Domain(m)
	sub := ops.NewObjectSet(dom[:len(dom)/2]...)

	b.Run("Map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ops.Map(repo, s.ID, t.ID); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Domain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ops.Domain(m)
		}
	})
	b.Run("Range", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ops.Range(m)
		}
	})
	b.Run("RestrictDomain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ops.RestrictDomain(m, sub)
		}
	})
	b.Run("RestrictRange", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ops.RestrictRange(m, sub)
		}
	})
}

func BenchmarkTable2Ops1k(b *testing.B)   { benchTable2Size(b, 1000) }
func BenchmarkTable2Ops10k(b *testing.B)  { benchTable2Size(b, 10000) }
func BenchmarkTable2Ops100k(b *testing.B) { benchTable2Size(b, 100000) }

// ---------------------------------------------------------------------------
// E3 — Figure 3: the canonical annotation view

func BenchmarkFigure3View(b *testing.B) {
	sys, u := benchSystem(b)
	var accs []string
	for i := 1; i <= 8; i++ {
		accs = append(accs, u.Accession("LocusLink", i*3))
	}
	q := Query{
		Source:     "LocusLink",
		Accessions: accs,
		Targets:    []Target{{Source: "Hugo"}, {Source: "GO"}, {Source: "Location"}, {Source: "OMIM"}},
		Mode:       "OR",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.AnnotationView(q); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E4 — Figure 5: GenerateView parameter sweep

func benchFigure5(b *testing.B, m int, mode string, negate bool) {
	sys, _ := benchSystem(b)
	targets := []string{"Hugo", "GO", "Location", "OMIM", "Unigene", "RefSeq", "Ensembl", "dbSNP"}
	specs := make([]Target, m)
	for i := 0; i < m; i++ {
		specs[i] = Target{Source: targets[i]}
	}
	if negate {
		specs[m-1].Negate = true
	}
	q := Query{Source: "LocusLink", Targets: specs, Mode: mode}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.AnnotationView(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5GenerateView1TargetOR(b *testing.B)   { benchFigure5(b, 1, "OR", false) }
func BenchmarkFigure5GenerateView4TargetsOR(b *testing.B)  { benchFigure5(b, 4, "OR", false) }
func BenchmarkFigure5GenerateView8TargetsOR(b *testing.B)  { benchFigure5(b, 8, "OR", false) }
func BenchmarkFigure5GenerateView1TargetAND(b *testing.B)  { benchFigure5(b, 1, "AND", false) }
func BenchmarkFigure5GenerateView4TargetsAND(b *testing.B) { benchFigure5(b, 4, "AND", false) }
func BenchmarkFigure5GenerateView8TargetsAND(b *testing.B) { benchFigure5(b, 8, "AND", false) }
func BenchmarkFigure5GenerateViewNegated(b *testing.B)     { benchFigure5(b, 4, "AND", true) }

// ---------------------------------------------------------------------------
// E5 — import pipeline

func BenchmarkImportParse(b *testing.B) {
	u := gen.NewUniverse(gen.Config{Seed: 1, Scale: benchScale})
	var sb strings.Builder
	if err := u.Render("LocusLink", &sb); err != nil {
		b.Fatal(err)
	}
	text := sb.String()
	info := u.SourceInfo("LocusLink")
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse("locuslink", strings.NewReader(text), info); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImportFirst(b *testing.B) {
	u := gen.NewUniverse(gen.Config{Seed: 1, Scale: benchScale})
	d, err := u.Dataset("LocusLink")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		repo, err := gam.Open(sqldb.NewDB())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := importer.Import(repo, d, importer.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImportDuplicate(b *testing.B) {
	u := gen.NewUniverse(gen.Config{Seed: 1, Scale: benchScale})
	d, err := u.Dataset("LocusLink")
	if err != nil {
		b.Fatal(err)
	}
	repo, err := gam.Open(sqldb.NewDB())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := importer.Import(repo, d, importer.Options{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := importer.Import(repo, d, importer.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if st.ObjectsNew != 0 || st.AssocsNew != 0 {
			b.Fatalf("duplicate elimination failed: %+v", st)
		}
	}
}

// ---------------------------------------------------------------------------
// E6 — derived relationships

func BenchmarkComposeChain2(b *testing.B) {
	benchComposeChain(b, []string{"NetAffx-HG-U133A", "Unigene", "LocusLink"})
}
func BenchmarkComposeChain3(b *testing.B) {
	benchComposeChain(b, []string{"NetAffx-HG-U133A", "Unigene", "LocusLink", "GO"})
}
func BenchmarkComposeChain4(b *testing.B) {
	benchComposeChain(b, []string{"Hugo", "LocusLink", "Unigene", "GenBank"})
}

func benchComposeChain(b *testing.B, path []string) {
	sys, _ := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.ComposePath(path); err != nil {
			b.Fatal(err)
		}
	}
}

// E6b — executor: cached, parallel mapping-path execution vs. the cold
// sequential path. The acceptance gate of the executor PR compares
// ExecutorMapPathWarm against ExecutorMapPathCold on the 3-hop chain.

func benchExecutorPath(b *testing.B) (*ops.Executor, []gam.SourceID) {
	b.Helper()
	sys, _ := benchSystem(b)
	names := []string{"NetAffx-HG-U133A", "Unigene", "LocusLink", "GO"}
	path := make([]gam.SourceID, len(names))
	for i, n := range names {
		src := sys.Repo().SourceByName(n)
		if src == nil {
			b.Fatalf("unknown source %s", n)
		}
		path[i] = src.ID
	}
	return sys.Executor(), path
}

func BenchmarkExecutorMapPathCold(b *testing.B) {
	exec, path := benchExecutorPath(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.Reset()
		if _, err := exec.MapPath(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecutorMapPathWarm(b *testing.B) {
	exec, path := benchExecutorPath(b)
	exec.Reset()
	if _, err := exec.MapPath(path); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.MapPath(path); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutorMapPathSequential measures the uncached left-fold
// MapPath for reference against the executor's cold batched/parallel run.
func BenchmarkExecutorMapPathSequential(b *testing.B) {
	sys, _ := benchSystem(b)
	_, path := benchExecutorPath(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ops.MapPath(sys.Repo(), path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubsumedDerivation(b *testing.B) {
	sys, _ := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.DeriveSubsumed("GO"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E7 — scale: full universe import

func BenchmarkScaleImport(b *testing.B) {
	u := gen.NewUniverse(gen.Config{Seed: 1, Scale: benchScale})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := New()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.ImportUniverse(u, ImportOptions{DeriveSubsumed: true}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E8 — path discovery

func BenchmarkPathFinding(b *testing.B) {
	sys, _ := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.FindPath("NetAffx-HG-U95A", "OMIM"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E9 — functional profiling

func BenchmarkProfilePipeline(b *testing.B) {
	sys, _ := benchSystem(b)
	p, err := profile.NewPipeline(sys.Repo(), "NetAffx-HG-U133A", "Unigene", "LocusLink", "GO")
	if err != nil {
		b.Fatal(err)
	}
	probes, err := p.ProbeAccessions()
	if err != nil {
		b.Fatal(err)
	}
	annotations, err := p.ProbeAnnotations()
	if err != nil {
		b.Fatal(err)
	}
	terms, err := p.TermAccessions()
	if err != nil {
		b.Fatal(err)
	}
	study := profile.NewStudy(profile.DefaultStudyConfig(), probes, annotations, terms)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(study); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E10 — ablation: star schema vs GAM

func BenchmarkAblationStarSchemaLoad(b *testing.B) {
	u := gen.NewUniverse(gen.Config{Seed: 1, Scale: benchScale})
	d, err := u.Dataset("LocusLink")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w, err := star.Build(sqldb.NewDB())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, _, err := w.LoadDataset(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStarSchemaQuery(b *testing.B) {
	u := gen.NewUniverse(gen.Config{Seed: 1, Scale: benchScale})
	d, err := u.Dataset("LocusLink")
	if err != nil {
		b.Fatal(err)
	}
	w, err := star.Build(sqldb.NewDB())
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := w.LoadDataset(d); err != nil {
		b.Fatal(err)
	}
	accs := []string{u.Accession("LocusLink", 3), u.Accession("LocusLink", 6), u.Accession("LocusLink", 9)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.AnnotationView(accs, []string{"Hugo", "GO"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGAMQuery(b *testing.B) {
	sys, u := benchSystem(b)
	accs := []string{u.Accession("LocusLink", 3), u.Accession("LocusLink", 6), u.Accession("LocusLink", 9)}
	q := Query{Source: "LocusLink", Accessions: accs, Targets: []Target{{Source: "Hugo"}, {Source: "GO"}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.AnnotationView(q); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E11 — ablation: materialization

func BenchmarkAblationComposeOnTheFly(b *testing.B) {
	sys, _ := benchSystem(b)
	path := []string{"NetAffx-HG-U133A", "Unigene", "LocusLink", "GO"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.ComposePath(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMaterializedLookup(b *testing.B) {
	sys, _ := benchSystem(b)
	path := []string{"NetAffx-HG-U133A", "Unigene", "LocusLink", "GO"}
	m, err := sys.ComposePath(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Materialize(m); err != nil {
		b.Fatal(err)
	}
	chip := sys.Repo().SourceByName(path[0])
	goSrc := sys.Repo().SourceByName("GO")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ops.Map(sys.Repo(), chip.ID, goSrc.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E12 — ablation: SRS navigation vs GenerateView

func srsIndex(b *testing.B, u *gen.Universe) *srs.Index {
	b.Helper()
	idx := srs.NewIndex()
	for _, name := range []string{"LocusLink", "Hugo", "GO", "OMIM"} {
		d, err := u.Dataset(name)
		if err != nil {
			b.Fatal(err)
		}
		if err := idx.AddDataset(d); err != nil {
			b.Fatal(err)
		}
	}
	return idx
}

func BenchmarkAblationSRSNavigation(b *testing.B) {
	_, u := benchSystem(b)
	idx := srsIndex(b, u)
	accs := make([]string, 100)
	for i := range accs {
		accs[i] = u.Accession("LocusLink", i)
	}
	targets := []string{"Hugo", "GO", "OMIM"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.AnnotateSet("LocusLink", accs, targets)
	}
}

func BenchmarkAblationSRSEquivalentView(b *testing.B) {
	sys, u := benchSystem(b)
	accs := make([]string, 100)
	for i := range accs {
		accs[i] = u.Accession("LocusLink", i)
	}
	q := Query{
		Source: "LocusLink", Accessions: accs,
		Targets: []Target{{Source: "Hugo"}, {Source: "GO"}, {Source: "OMIM"}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.AnnotationView(q); err != nil {
			b.Fatal(err)
		}
	}
}
