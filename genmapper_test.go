package genmapper

import (
	"path/filepath"
	"strings"
	"testing"

	"genmapper/internal/eav"
)

// demoSystem builds a small system with the paper's running example:
// LocusLink annotated by Hugo/GO/OMIM, Unigene mapped to LocusLink, and a
// GO hierarchy.
func demoSystem(t *testing.T) *System {
	t.Helper()
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	imp := func(d *Dataset, opts ImportOptions) {
		t.Helper()
		if _, err := sys.ImportDataset(d, opts); err != nil {
			t.Fatal(err)
		}
	}

	goData := eav.NewDataset(SourceInfo{Name: "GO", Structure: "network"})
	goData.Add("GO:0008150", eav.TargetName, "", "biological process")
	goData.Add("GO:0009117", eav.TargetName, "", "nucleotide metabolism")
	goData.Add("GO:0009116", eav.TargetName, "", "nucleoside metabolism")
	goData.Add("GO:0009117", eav.TargetIsA, "GO:0008150", "")
	goData.Add("GO:0009116", eav.TargetIsA, "GO:0009117", "")
	imp(goData, ImportOptions{DeriveSubsumed: true})

	ll := eav.NewDataset(SourceInfo{Name: "LocusLink", Content: "gene"})
	ll.Add("353", eav.TargetName, "", "adenine phosphoribosyltransferase")
	ll.Add("353", "Hugo", "APRT", "")
	ll.Add("353", "GO", "GO:0009116", "")
	ll.Add("353", "OMIM", "102600", "")
	ll.Add("354", eav.TargetName, "", "locus two")
	ll.Add("354", "Hugo", "XYZ2", "")
	ll.Add("355", eav.TargetName, "", "locus three")
	ll.Add("355", "GO", "GO:0009117", "")
	imp(ll, ImportOptions{})

	ug := eav.NewDataset(SourceInfo{Name: "Unigene", Content: "gene"})
	ug.Add("Hs.1", "LocusLink", "353", "")
	ug.Add("Hs.2", "LocusLink", "354", "")
	imp(ug, ImportOptions{})

	return sys
}

func TestSystemStats(t *testing.T) {
	sys := demoSystem(t)
	st, err := sys.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sources != 5 { // GO, LocusLink, Hugo, OMIM, Unigene
		t.Errorf("sources = %d", st.Sources)
	}
	if st.Objects == 0 || st.Associations == 0 {
		t.Errorf("stats = %+v", st)
	}
	if len(sys.Sources()) != 5 {
		t.Errorf("Sources() = %d", len(sys.Sources()))
	}
}

func TestAnnotationViewOR(t *testing.T) {
	sys := demoSystem(t)
	table, err := sys.AnnotationView(Query{
		Source:  "LocusLink",
		Targets: []Target{{Source: "Hugo"}, {Source: "GO"}},
		Mode:    "OR",
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(table.Columns, ",") != "LocusLink,Hugo,GO" {
		t.Fatalf("columns = %v", table.Columns)
	}
	if table.RowCount() != 3 {
		t.Fatalf("rows = %d, want 3", table.RowCount())
	}
	// 354 has Hugo but no GO -> empty GO cell under OR.
	for _, row := range table.Rows {
		if row[0] == "354" && row[2] != "" {
			t.Errorf("354 GO cell = %q", row[2])
		}
	}
}

func TestAnnotationViewANDWithNegation(t *testing.T) {
	sys := demoSystem(t)
	// The paper's canonical query shape: loci with a Hugo symbol but NOT
	// annotated with some GO terms.
	table, err := sys.AnnotationView(Query{
		Source: "LocusLink",
		Targets: []Target{
			{Source: "Hugo"},
			{Source: "GO", Accessions: []string{"GO:0009116"}, Negate: true},
		},
		Mode: "AND",
	})
	if err != nil {
		t.Fatal(err)
	}
	// 353 has GO:0009116 -> excluded. 354 (no GO at all) and 355 (only
	// GO:0009117) both lack a Hugo?? 354 has Hugo, 355 has no Hugo ->
	// under AND only 354 remains.
	if table.RowCount() != 1 || table.Rows[0][0] != "354" {
		t.Fatalf("negated AND view = %v", table.Rows)
	}
}

func TestAnnotationViewTransitiveTarget(t *testing.T) {
	sys := demoSystem(t)
	// Unigene has no direct GO mapping: the resolver must compose via
	// LocusLink automatically.
	table, err := sys.AnnotationView(Query{
		Source:  "Unigene",
		Targets: []Target{{Source: "GO"}},
		Mode:    "OR",
	})
	if err != nil {
		t.Fatal(err)
	}
	var hs1GO string
	for _, row := range table.Rows {
		if row[0] == "Hs.1" {
			hs1GO = row[1]
		}
	}
	if hs1GO != "GO:0009116" {
		t.Fatalf("Hs.1 derived GO = %q", hs1GO)
	}
}

func TestAnnotationViewExplicitVia(t *testing.T) {
	sys := demoSystem(t)
	table, err := sys.AnnotationView(Query{
		Source:  "Unigene",
		Targets: []Target{{Source: "GO", Via: []string{"Unigene", "LocusLink", "GO"}}},
		Mode:    "AND",
	})
	if err != nil {
		t.Fatal(err)
	}
	if table.RowCount() != 1 || table.Rows[0][0] != "Hs.1" {
		t.Fatalf("via view = %v", table.Rows)
	}
}

func TestAnnotationViewRestrictedAccessions(t *testing.T) {
	sys := demoSystem(t)
	table, err := sys.AnnotationView(Query{
		Source:     "LocusLink",
		Accessions: []string{"353"},
		Targets:    []Target{{Source: "Hugo"}},
		WithText:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if table.RowCount() != 1 {
		t.Fatalf("rows = %d", table.RowCount())
	}
	if !strings.Contains(table.Rows[0][0], "(adenine phosphoribosyltransferase)") {
		t.Errorf("with-text cell = %q", table.Rows[0][0])
	}
}

func TestAnnotationViewErrors(t *testing.T) {
	sys := demoSystem(t)
	cases := []Query{
		{Source: "Nope", Targets: []Target{{Source: "GO"}}},
		{Source: "LocusLink", Targets: []Target{{Source: "Nope"}}},
		{Source: "LocusLink", Targets: []Target{{Source: "GO"}}, Mode: "XOR"},
		{Source: "LocusLink", Accessions: []string{"no-such"}, Targets: []Target{{Source: "GO"}}},
		{Source: "LocusLink"},
	}
	for i, q := range cases {
		if _, err := sys.AnnotationView(q); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestFindPath(t *testing.T) {
	sys := demoSystem(t)
	p, err := sys.FindPath("Unigene", "GO")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(p, ">") != "Unigene>LocusLink>GO" {
		t.Fatalf("path = %v", p)
	}
	pv, err := sys.FindPathVia("Unigene", "LocusLink", "Hugo")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(pv, ">") != "Unigene>LocusLink>Hugo" {
		t.Fatalf("via path = %v", pv)
	}
	if _, err := sys.FindPath("Unigene", "Nope"); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestSavePathSurvivesRefresh(t *testing.T) {
	sys := demoSystem(t)
	if err := sys.SavePath("myPath", []string{"Unigene", "LocusLink", "GO"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.RefreshGraph(); err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.Graph().SavedPath("myPath"); !ok {
		t.Fatal("saved path lost on refresh")
	}
}

func TestComposeAndMaterialize(t *testing.T) {
	sys := demoSystem(t)
	m, err := sys.ComposePath([]string{"Unigene", "LocusLink", "GO"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 { // Hs.1 -> GO:0009116
		t.Fatalf("composed mapping = %d assocs", m.Len())
	}
	if err := sys.Materialize(m); err != nil {
		t.Fatal(err)
	}
	// The direct path now exists in the graph.
	p, err := sys.FindPath("Unigene", "GO")
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 {
		t.Fatalf("path after materialization = %v", p)
	}
}

func TestObjectInfo(t *testing.T) {
	sys := demoSystem(t)
	obj, err := sys.ObjectInfo("LocusLink", "353")
	if err != nil {
		t.Fatal(err)
	}
	if obj.Text != "adenine phosphoribosyltransferase" {
		t.Errorf("text = %q", obj.Text)
	}
	if _, err := sys.ObjectInfo("LocusLink", "999"); err == nil {
		t.Error("missing accession accepted")
	}
	if _, err := sys.ObjectInfo("Nope", "353"); err == nil {
		t.Error("missing source accepted")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	sys := demoSystem(t)
	path := filepath.Join(t.TempDir(), "system.snap")
	if err := sys.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	st1, _ := sys.Stats()
	st2, _ := loaded.Stats()
	if st1.Objects != st2.Objects || st1.Associations != st2.Associations {
		t.Fatalf("snapshot stats differ: %s vs %s", st1, st2)
	}
	// Queries work on the loaded system.
	table, err := loaded.AnnotationView(Query{
		Source:  "LocusLink",
		Targets: []Target{{Source: "GO"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if table.RowCount() == 0 {
		t.Fatal("no rows after snapshot load")
	}
}

func TestImportUniverseSmall(t *testing.T) {
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	u := NewUniverse(GenConfig{Seed: 1, Scale: 0.0003})
	calls := 0
	stats, err := sys.ImportUniverse(u, ImportOptions{DeriveSubsumed: true}, func(*ImportStats) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != len(u.Names()) || calls != len(stats) {
		t.Fatalf("stats = %d, calls = %d, sources = %d", len(stats), calls, len(u.Names()))
	}
	st, _ := sys.Stats()
	if st.Sources < 60 {
		t.Errorf("sources = %d, want 60+", st.Sources)
	}
	// The functional chain of §5.2 is connected.
	p, err := sys.FindPath("NetAffx-HG-U95A", "GO")
	if err != nil {
		t.Fatalf("no path from chip to GO: %v", err)
	}
	if len(p) < 2 {
		t.Fatalf("path = %v", p)
	}
}

func TestDeriveSubsumedByName(t *testing.T) {
	sys := demoSystem(t)
	n, err := sys.DeriveSubsumed("GO")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // GO:0008150->{2}, GO:0009117->{1}
		t.Fatalf("subsumed = %d, want 3", n)
	}
	if _, err := sys.DeriveSubsumed("Nope"); err == nil {
		t.Error("unknown source accepted")
	}
}
