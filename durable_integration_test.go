package genmapper

// System-level durability tests: a durable GenMapper survives an abrupt
// stop (no checkpoint, no clean close) with every committed import
// intact, and Restore invalidates all derived layers (repo caches,
// executor mapping cache, source graph) along with the engine state.

import (
	"path/filepath"
	"testing"

	"genmapper/internal/gen"
)

func importSmallUniverse(t *testing.T, sys *System) *Universe {
	t.Helper()
	u := gen.NewUniverse(gen.Config{Seed: 5, Scale: 0.001})
	if _, err := sys.ImportUniverse(u, ImportOptions{DeriveSubsumed: true}, nil); err != nil {
		t.Fatal(err)
	}
	return u
}

func TestDurableSystemSurvivesAbruptStop(t *testing.T) {
	dir := t.TempDir()
	sys, err := OpenDurable(dir, DurableOptions{CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	importSmallUniverse(t, sys)
	want, err := sys.Stats()
	if err != nil {
		t.Fatal(err)
	}
	wantDump := sys.DB().DumpString()
	// Abrupt stop: release the log but skip any checkpoint — recovery must
	// come entirely from the WAL tail.
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := OpenDurable(dir, DurableOptions{CheckpointInterval: -1})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer sys2.Close()
	got, err := sys2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got.Objects != want.Objects || got.Sources != want.Sources ||
		got.Mappings != want.Mappings || got.Associations != want.Associations {
		t.Fatalf("recovered stats %v, want %v", got, want)
	}
	if sys2.DB().DumpString() != wantDump {
		t.Fatal("recovered database is not byte-identical to the pre-stop state")
	}
	if ws := sys2.SQLWALStats(); !ws.Enabled || ws.RecoveredRecords == 0 {
		t.Fatalf("expected log replay at open, stats = %+v", ws)
	}
	// The recovered system answers queries and accepts new imports.
	srcs := sys2.Sources()
	if len(srcs) == 0 {
		t.Fatal("no sources after recovery")
	}
	if _, err := sys2.AnnotationView(Query{
		Source:  "LocusLink",
		Targets: []Target{{Source: "Hugo"}},
	}); err != nil {
		t.Fatalf("annotation view after recovery: %v", err)
	}
}

func TestDurableCheckpointShortensRecovery(t *testing.T) {
	dir := t.TempDir()
	sys, err := OpenDurable(dir, DurableOptions{CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	importSmallUniverse(t, sys)
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wantDump := sys.DB().DumpString()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := OpenDurable(dir, DurableOptions{CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if ws := sys2.SQLWALStats(); ws.RecoveredRecords != 0 {
		t.Fatalf("checkpointed system replayed %d records, want 0", ws.RecoveredRecords)
	}
	if sys2.DB().DumpString() != wantDump {
		t.Fatal("checkpoint recovery diverged")
	}
}

// TestSystemRestoreInvalidatesDerivedCaches: after Restore, the repo's
// source catalog, the executor's mapping cache and the source graph must
// all describe the restored contents, not the pre-restore ones.
func TestSystemRestoreInvalidatesDerivedCaches(t *testing.T) {
	dir := t.TempDir()
	sys, err := OpenDurable(dir, DurableOptions{CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	importSmallUniverse(t, sys)

	snap := filepath.Join(t.TempDir(), "before.snap")
	if err := sys.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	sourcesBefore := len(sys.Sources())

	// Mutate past the snapshot: a new source with a mapping, so graph,
	// repo caches and executor all pick it up.
	d := &Dataset{Source: SourceInfo{Name: "Extra", Content: "other", Structure: "flat"}}
	if _, err := sys.ImportDataset(d, ImportOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(sys.Sources()) != sourcesBefore+1 {
		t.Fatalf("import did not add a source")
	}
	if sys.Repo().SourceByName("Extra") == nil {
		t.Fatal("repo cache missing new source")
	}

	if err := sys.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Sources()); got != sourcesBefore {
		t.Fatalf("sources after restore = %d, want %d", got, sourcesBefore)
	}
	if sys.Repo().SourceByName("Extra") != nil {
		t.Fatal("repo cache still holds the rolled-back source after Restore")
	}
	// Mapping queries still run on the restored graph + executor.
	if _, err := sys.AnnotationView(Query{
		Source:  "LocusLink",
		Targets: []Target{{Source: "Hugo"}},
	}); err != nil {
		t.Fatalf("annotation view after restore: %v", err)
	}

	// And the restore is durable: reopening must NOT resurrect "Extra"
	// from the pre-restore WAL tail.
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	sys2, err := OpenDurable(dir, DurableOptions{CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if sys2.Repo().SourceByName("Extra") != nil {
		t.Fatal("pre-restore WAL tail replayed over the restored state")
	}
	if got := len(sys2.Sources()); got != sourcesBefore {
		t.Fatalf("sources after restore+reopen = %d, want %d", got, sourcesBefore)
	}
}
