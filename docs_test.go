package genmapper_test

import (
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles returns README.md plus every markdown file under docs/ —
// the documentation surface the CI docs job keeps honest.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md"}
	entries, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("docs/ contains no markdown files")
	}
	return append(files, entries...)
}

// stripFences blanks out fenced code blocks (preserving line count) so
// link scanning never trips over code that happens to contain "](".
func stripFences(doc string) string {
	lines := strings.Split(doc, "\n")
	in := false
	for i, line := range lines {
		fence := strings.HasPrefix(strings.TrimSpace(line), "```")
		if fence {
			in = !in
			lines[i] = ""
			continue
		}
		if in {
			lines[i] = ""
		}
	}
	return strings.Join(lines, "\n")
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsMarkdownLinks resolves every relative markdown link in README
// and docs/ against the working tree, so a renamed or deleted file
// cannot leave dangling references behind.
func TestDocsMarkdownLinks(t *testing.T) {
	for _, file := range docFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(stripFences(string(data)), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not resolve (%v)", file, m[1], err)
			}
		}
	}
}

// goFences extracts the contents of ```go fenced blocks.
func goFences(doc string) []string {
	var out []string
	var cur []string
	in := false
	for _, line := range strings.Split(doc, "\n") {
		switch {
		case !in && strings.TrimSpace(line) == "```go":
			in = true
			cur = nil
		case in && strings.TrimSpace(line) == "```":
			in = false
			out = append(out, strings.Join(cur, "\n"))
		case in:
			cur = append(cur, line)
		}
	}
	return out
}

// TestDocsGoFencesGofmt holds every Go snippet in README and docs/ to
// the same standard as the code: it must parse as a Go fragment and
// already be in canonical gofmt form.
func TestDocsGoFencesGofmt(t *testing.T) {
	for _, file := range docFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, fence := range goFences(string(data)) {
			formatted, err := format.Source([]byte(fence))
			if err != nil {
				t.Errorf("%s go fence #%d does not parse as a Go fragment: %v\n%s", file, i+1, err, fence)
				continue
			}
			if got := strings.TrimRight(string(formatted), "\n"); got != strings.TrimRight(fence, "\n") {
				t.Errorf("%s go fence #%d is not gofmt-clean; want:\n%s\ngot:\n%s", file, i+1, got, fence)
			}
		}
	}
}
