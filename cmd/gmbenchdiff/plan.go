package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"genmapper/internal/sqldb"
)

// runPlan is the plan-shape gate: it rebuilds the deterministic plan
// fixture, compiles every sqldb.PlanGoldenCases statement through EXPLAIN
// (FORMAT JSON), and compares the documents byte-for-byte against the
// committed goldens. Unlike the timing gate it has zero tolerance — plan
// shape is machine-independent, so any drift is a planner change that
// must either be reverted or re-baselined with -plan-write.
func runPlan(dir string, write bool, stdout, stderr io.Writer) int {
	db, err := sqldb.NewPlanFixtureDB()
	if err != nil {
		fmt.Fprintln(stderr, "gmbenchdiff: plan fixture:", err)
		return 2
	}
	failed := 0
	for _, tc := range sqldb.PlanGoldenCases {
		got, err := db.Explain(tc.SQL, "json")
		if err != nil {
			fmt.Fprintf(stderr, "gmbenchdiff: %s: %v\n", tc.Name, err)
			failed++
			continue
		}
		got += "\n"
		path := filepath.Join(dir, tc.Name+".json")
		if write {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				fmt.Fprintln(stderr, "gmbenchdiff:", err)
				return 2
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "gmbenchdiff: %s: missing golden (re-baseline with -plan -plan-write): %v\n", tc.Name, err)
			failed++
			continue
		}
		if got != string(want) {
			fmt.Fprintf(stderr, "gmbenchdiff: PLAN DRIFT %s (%s)\n%s", tc.Name, tc.SQL, firstDiff(string(want), got))
			failed++
			continue
		}
		fmt.Fprintf(stdout, "%-24s ok\n", tc.Name)
	}
	if write {
		fmt.Fprintf(stdout, "wrote %d plan goldens to %s\n", len(sqldb.PlanGoldenCases), dir)
		return 0
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "gmbenchdiff: %d of %d plan shapes drifted from %s\n", failed, len(sqldb.PlanGoldenCases), dir)
		return 1
	}
	fmt.Fprintf(stdout, "%d plan shapes match %s\n", len(sqldb.PlanGoldenCases), dir)
	return 0
}

// firstDiff renders the first differing line pair of two documents.
func firstDiff(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			return fmt.Sprintf("  line %d:\n  - %s\n  + %s\n", i+1, wl, gl)
		}
	}
	return ""
}
