package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baselineJSON = `{
  "pr": 99,
  "results": [
    {"workload": "scan", "bench": "BenchmarkFullScanFilter", "ns_op": 1000000, "allocs_op": 100},
    {"workload": "insert", "bench": "BenchmarkInsertSingleRow (-cpu 8)", "ns_op": 1300, "allocs_op": 10},
    {"workload": "fsync-bound", "bench": "BenchmarkWALInsertGroup", "ns_op": 100000, "allocs_op": 12},
    {"workload": "stable scan", "bench": "BenchmarkStableScan", "ns_op": 1000000, "allocs_op": 100, "stable": true}
  ]
}`

func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, []byte(baselineJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runDiff(t *testing.T, benchOutput, skip string, nsTol, allocTol float64) (code int, out, errOut string) {
	t.Helper()
	return runDiffStable(t, benchOutput, skip, nsTol, nsTol, allocTol)
}

func runDiffStable(t *testing.T, benchOutput, skip string, nsTol, stableTol, allocTol float64) (code int, out, errOut string) {
	t.Helper()
	var sb, eb strings.Builder
	code = run(strings.NewReader(benchOutput), []string{writeBaseline(t)}, nsTol, stableTol, allocTol, skip, "", &sb, &eb)
	return code, sb.String(), eb.String()
}

// TestGateAcceptsWithinTolerance: a 10% ns/op slip and equal allocs pass
// the default 25% gate.
func TestGateAcceptsWithinTolerance(t *testing.T) {
	out := `goos: linux
BenchmarkFullScanFilter-8   	    1000	   1100000 ns/op	  5000 B/op	     100 allocs/op
BenchmarkInsertSingleRow-8  	 1000000	      1250 ns/op	   700 B/op	      10 allocs/op
`
	code, stdout, stderr := runDiff(t, out, "", 0.25, 0.25)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "no regressions") || !strings.Contains(stdout, "compared 2 of 2") {
		t.Fatalf("stdout:\n%s", stdout)
	}
}

// TestGateFailsOnSyntheticRegression is the acceptance demonstration: a
// synthetic 30% ns/op regression (>25% tolerance) must exit non-zero and
// name the offending benchmark.
func TestGateFailsOnSyntheticRegression(t *testing.T) {
	out := "BenchmarkFullScanFilter-8   1000   1300000 ns/op   5000 B/op   100 allocs/op\n"
	code, _, stderr := runDiff(t, out, "", 0.25, 0.25)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "REGRESSION BenchmarkFullScanFilter ns/op") {
		t.Fatalf("stderr:\n%s", stderr)
	}
}

// TestGateFailsOnAllocRegression: allocs/op is machine-independent, so
// even a modest 50% alloc growth trips the gate while ns/op is fine.
func TestGateFailsOnAllocRegression(t *testing.T) {
	out := "BenchmarkFullScanFilter-8   1000   900000 ns/op   5000 B/op   150 allocs/op\n"
	code, _, stderr := runDiff(t, out, "", 0.25, 0.25)
	if code != 1 || !strings.Contains(stderr, "REGRESSION BenchmarkFullScanFilter allocs/op") {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
}

// TestGateImprovementsAndUnknownsPass: faster-than-baseline and
// not-in-baseline benchmarks never fail the gate.
func TestGateImprovementsAndUnknownsPass(t *testing.T) {
	out := `BenchmarkFullScanFilter-8   1000   500000 ns/op   5000 B/op   60 allocs/op
BenchmarkBrandNewPath-8     1000   123456 ns/op   10 B/op   1 allocs/op
`
	code, stdout, stderr := runDiff(t, out, "", 0.25, 0.25)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "BenchmarkBrandNewPath") || !strings.Contains(stdout, "no baseline") {
		t.Fatalf("stdout:\n%s", stdout)
	}
}

// TestGateSkipAndSuffixHandling: -skip excludes fsync-bound benches, and
// the (-cpu 8) annotation in baseline names plus the -N GOMAXPROCS suffix
// in bench output both normalize away.
func TestGateSkipAndSuffixHandling(t *testing.T) {
	out := `BenchmarkWALInsertGroup-4   100   900000 ns/op   800 B/op   12 allocs/op
BenchmarkInsertSingleRow-4  100000   1200 ns/op   700 B/op   10 allocs/op
`
	// Without -skip, WALInsertGroup's 9x ns regression fails the gate.
	if code, _, _ := runDiff(t, out, "", 0.25, 0.25); code != 1 {
		t.Fatal("expected WAL regression to fail")
	}
	code, stdout, stderr := runDiff(t, out, "^BenchmarkWAL", 0.25, 0.25)
	if code != 0 {
		t.Fatalf("exit %d with -skip, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "compared 1 of 1") {
		t.Fatalf("stdout:\n%s", stdout)
	}
}

// TestStableToleranceTightensGate: a 40% slip on a benchmark the baseline
// marks stable fails under -stable-tolerance 0.25 even when the wide
// machine-skew -tolerance (4x) would let it through — and the same slip on
// an unmarked benchmark still passes.
func TestStableToleranceTightensGate(t *testing.T) {
	out := `BenchmarkStableScan-8      1000   1400000 ns/op   5000 B/op   100 allocs/op
BenchmarkFullScanFilter-8  1000   1400000 ns/op   5000 B/op   100 allocs/op
`
	code, _, stderr := runDiffStable(t, out, "", 4.0, 0.25, 0.25)
	if code != 1 {
		t.Fatalf("exit %d, want stable regression to fail; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "REGRESSION BenchmarkStableScan ns/op") {
		t.Fatalf("stderr:\n%s", stderr)
	}
	if strings.Contains(stderr, "BenchmarkFullScanFilter") {
		t.Fatalf("unmarked benchmark gated at stable tolerance:\n%s", stderr)
	}
}

// TestWriteJSONArtifact: -write-json emits the fresh results in the
// BENCH_pr*.json "results" shape for the CI artifact upload.
func TestWriteJSONArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.json")
	var sb, eb strings.Builder
	out := "BenchmarkInsertSingleRow-8  1000000  1250 ns/op  700 B/op  10 allocs/op\n"
	if code := run(strings.NewReader(out), []string{writeBaseline(t)}, 0.25, 0.25, 0.25, "", path, &sb, &eb); code != 0 {
		t.Fatalf("exit %d: %s", code, eb.String())
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"bench": "BenchmarkInsertSingleRow"`, `"ns_op": 1250`, `"allocs_op": 10`} {
		if !strings.Contains(string(blob), want) {
			t.Fatalf("artifact missing %s:\n%s", want, blob)
		}
	}
}
