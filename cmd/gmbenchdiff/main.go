// Command gmbenchdiff is the CI bench-regression gate: it parses `go test
// -bench` output and compares every benchmark against the committed
// BENCH_pr*.json baselines, failing (exit 1) when ns/op or allocs/op
// regressed beyond the tolerance.
//
// Usage:
//
//	go test ./... -run '^$' -bench . -benchmem | gmbenchdiff BENCH_pr2.json BENCH_pr3.json
//	gmbenchdiff -bench-output bench.txt -tolerance 0.25 BENCH_pr*.json
//	gmbenchdiff -write-json fresh.json BENCH_pr5.json < bench.txt
//
// Baselines are the repo's BENCH_pr*.json files ({"results": [{"bench":
// "BenchmarkFoo", "ns_op": N, "allocs_op": N}, ...]}); when the same
// benchmark appears in several baselines the LAST file named on the
// command line wins, so list them oldest-first. Benchmarks present in the
// run but absent from every baseline are reported informationally and do
// not fail the gate; improvements never fail it either.
//
// ns/op is machine-dependent — CI passes a wider -tolerance for it while
// keeping the default (deterministic) allocs gate tight.
//
// The -plan mode gates plan *shape* instead of timing: it compiles the
// representative statements of sqldb.PlanGoldenCases through EXPLAIN
// (FORMAT JSON) and compares byte-for-byte against the goldens under
// internal/sqldb/testdata/plans, catching planner regressions (an index
// range silently becoming a full scan) that timing tolerance hides:
//
//	gmbenchdiff -plan
//	gmbenchdiff -plan -plan-write   # re-baseline after an intentional change
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// baselineEntry is one benchmark record of a BENCH_pr*.json file. Two
// shapes exist: plain records ("bench"/"ns_op"/"allocs_op") and
// before/after comparisons (PR2/PR3 style), whose "after_*" side is the
// baseline for the current code. Extra fields (workload, notes) are
// ignored.
type baselineEntry struct {
	Bench    string  `json:"bench"`
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
	// Stable marks a benchmark whose ns/op was observed to be reproducible
	// on the runner class that recorded it (spread across repeated runs
	// within a few percent); the gate applies -stable-tolerance to these
	// instead of the wide machine-skew -tolerance.
	Stable bool `json:"stable"`

	AfterBench    string  `json:"after_bench"`
	AfterNsOp     float64 `json:"after_ns_op"`
	AfterAllocsOp float64 `json:"after_allocs_op"`
}

type baselineFile struct {
	Results []baselineEntry `json:"results"`
}

// result is one parsed benchmark line of the current run.
type result struct {
	Name     string  `json:"bench"`
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op,omitempty"`
	AllocsOp float64 `json:"allocs_op"`
	hasAlloc bool
}

// benchLine matches `BenchmarkFoo-8  100  123.4 ns/op  56 B/op  7 allocs/op`
// (the B/op and allocs/op columns require -benchmem and may be absent).
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.e+]+) ns/op(?:\s+([0-9.e+]+) B/op\s+([0-9.e+]+) allocs/op)?`)

// gomaxprocsSuffix strips the trailing -N procs marker go test appends to
// benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func parseBenchOutput(r io.Reader) ([]result, error) {
	var out []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		res := result{Name: gomaxprocsSuffix.ReplaceAllString(m[1], "")}
		res.NsOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			res.BOp, _ = strconv.ParseFloat(m[3], 64)
			res.AllocsOp, _ = strconv.ParseFloat(m[4], 64)
			res.hasAlloc = true
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// loadBaselines folds the baseline files into one bench -> entry map;
// later files override earlier ones. The stored bench name's first token
// is the comparison key (files annotate names like "BenchmarkX (-cpu 8)").
func loadBaselines(paths []string) (map[string]baselineEntry, error) {
	base := make(map[string]baselineEntry)
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var f baselineFile
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		for _, e := range f.Results {
			if e.AfterBench != "" {
				name := strings.Fields(e.AfterBench)[0]
				base[name] = baselineEntry{Bench: name, NsOp: e.AfterNsOp, AllocsOp: e.AfterAllocsOp}
			}
			if e.Bench != "" {
				name := strings.Fields(e.Bench)[0]
				base[name] = e
			}
		}
	}
	return base, nil
}

// regression describes one gate violation.
type regression struct {
	bench   string
	metric  string
	base    float64
	current float64
	limit   float64
}

// compare checks every current result that has a baseline. A metric
// regresses when current > base * (1 + tol); zero/absent baselines are
// skipped (nothing meaningful to compare). Entries marked stable in the
// baseline use stableTol for ns/op instead of the wide nsTol.
func compare(results []result, base map[string]baselineEntry, nsTol, stableTol, allocTol float64) (checked int, regs []regression) {
	for _, r := range results {
		b, ok := base[r.Name]
		if !ok {
			continue
		}
		checked++
		tol := nsTol
		if b.Stable {
			tol = stableTol
		}
		if b.NsOp > 0 && r.NsOp > b.NsOp*(1+tol) {
			regs = append(regs, regression{r.Name, "ns/op", b.NsOp, r.NsOp, tol})
		}
		if b.AllocsOp > 0 && r.hasAlloc && r.AllocsOp > b.AllocsOp*(1+allocTol) {
			regs = append(regs, regression{r.Name, "allocs/op", b.AllocsOp, r.AllocsOp, allocTol})
		}
	}
	return checked, regs
}

func run(benchOutput io.Reader, baselinePaths []string, nsTol, stableTol, allocTol float64, skip string, writeJSON string, stdout, stderr io.Writer) int {
	results, err := parseBenchOutput(benchOutput)
	if err != nil {
		fmt.Fprintln(stderr, "gmbenchdiff: read bench output:", err)
		return 2
	}
	if skip != "" {
		re, err := regexp.Compile(skip)
		if err != nil {
			fmt.Fprintln(stderr, "gmbenchdiff: bad -skip:", err)
			return 2
		}
		kept := results[:0]
		for _, r := range results {
			if !re.MatchString(r.Name) {
				kept = append(kept, r)
			}
		}
		results = kept
	}
	if len(results) == 0 {
		fmt.Fprintln(stderr, "gmbenchdiff: no benchmark lines found in input")
		return 2
	}
	if writeJSON != "" {
		blob, _ := json.MarshalIndent(map[string]any{"results": results}, "", "  ")
		if err := os.WriteFile(writeJSON, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "gmbenchdiff:", err)
			return 2
		}
	}
	base, err := loadBaselines(baselinePaths)
	if err != nil {
		fmt.Fprintln(stderr, "gmbenchdiff:", err)
		return 2
	}
	checked, regs := compare(results, base, nsTol, stableTol, allocTol)
	for _, r := range results {
		if b, ok := base[r.Name]; ok && b.NsOp > 0 {
			fmt.Fprintf(stdout, "%-48s ns/op %12.0f -> %12.0f (%+.1f%%)", r.Name, b.NsOp, r.NsOp, 100*(r.NsOp-b.NsOp)/b.NsOp)
			if b.AllocsOp > 0 && r.hasAlloc {
				fmt.Fprintf(stdout, "  allocs/op %6.0f -> %6.0f", b.AllocsOp, r.AllocsOp)
			}
			fmt.Fprintln(stdout)
		} else {
			fmt.Fprintf(stdout, "%-48s (no baseline: %.0f ns/op)\n", r.Name, r.NsOp)
		}
	}
	fmt.Fprintf(stdout, "compared %d of %d benchmarks against %d baseline entries\n", checked, len(results), len(base))
	if len(regs) > 0 {
		for _, g := range regs {
			fmt.Fprintf(stderr, "gmbenchdiff: REGRESSION %s %s: %.0f -> %.0f (>%.0f%% over baseline)\n",
				g.bench, g.metric, g.base, g.current, g.limit*100)
		}
		return 1
	}
	fmt.Fprintln(stdout, "no regressions")
	return 0
}

func main() {
	var (
		benchOut  = flag.String("bench-output", "-", "file with `go test -bench` output (- = stdin)")
		nsTol     = flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression (0.25 = 25%)")
		stableTol = flag.Float64("stable-tolerance", 0.25, "allowed fractional ns/op regression for baseline entries marked \"stable\"")
		allocTol  = flag.Float64("allocs-tolerance", 0.25, "allowed fractional allocs/op regression")
		skip      = flag.String("skip", "", "regexp of benchmark names to ignore")
		writeOut  = flag.String("write-json", "", "also write the parsed current results as JSON (CI artifact)")
		plan      = flag.Bool("plan", false, "compare EXPLAIN plan shapes against committed goldens instead of timings")
		planDir   = flag.String("plan-dir", filepath.Join("internal", "sqldb", "testdata", "plans"), "directory of plan-JSON goldens (-plan mode)")
		planWrite = flag.Bool("plan-write", false, "rewrite the plan goldens from the current planner (-plan mode)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gmbenchdiff [flags] BASELINE.json [BASELINE.json ...]\n")
		fmt.Fprintf(os.Stderr, "       gmbenchdiff -plan [-plan-dir DIR] [-plan-write]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *plan {
		os.Exit(runPlan(*planDir, *planWrite, os.Stdout, os.Stderr))
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	in := io.Reader(os.Stdin)
	if *benchOut != "-" {
		f, err := os.Open(*benchOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmbenchdiff:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	os.Exit(run(in, flag.Args(), *nsTol, *stableTol, *allocTol, *skip, *writeOut, os.Stdout, os.Stderr))
}
