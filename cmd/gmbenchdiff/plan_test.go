package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"genmapper/internal/sqldb"
)

// TestPlanGateRoundTrip writes fresh goldens, verifies the gate passes
// against them, then corrupts one to prove the gate goes red.
func TestPlanGateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	if code := runPlan(dir, true, &out, &errOut); code != 0 {
		t.Fatalf("plan-write exited %d: %s", code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := runPlan(dir, false, &out, &errOut); code != 0 {
		t.Fatalf("gate against fresh goldens exited %d: %s", code, errOut.String())
	}

	// A planner regression — an indexed point lookup becoming a full scan —
	// appears as a golden mismatch and must fail the gate.
	path := filepath.Join(dir, sqldb.PlanGoldenCases[0].Name+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(data), "index-eq", "full-scan", 1)
	if mutated == string(data) {
		t.Fatalf("expected %s golden to contain an index-eq access", path)
	}
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := runPlan(dir, false, &out, &errOut); code != 1 {
		t.Fatalf("gate against drifted golden exited %d, want 1; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "PLAN DRIFT") {
		t.Fatalf("drift not reported: %s", errOut.String())
	}
}

// TestPlanGateMatchesCommittedGoldens runs the gate against the goldens
// committed in the repo, so a planner change cannot land without
// re-baselining them.
func TestPlanGateMatchesCommittedGoldens(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "sqldb", "testdata", "plans")
	if _, err := os.Stat(dir); err != nil {
		t.Skipf("goldens not found at %s: %v", dir, err)
	}
	var out, errOut strings.Builder
	if code := runPlan(dir, false, &out, &errOut); code != 0 {
		t.Fatalf("committed goldens drifted (exit %d):\n%s", code, errOut.String())
	}
}
