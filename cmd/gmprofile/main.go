// Command gmprofile runs the §5.2 large-scale gene functional profiling
// pipeline: probe sets of a microarray chip are mapped through UniGene and
// LocusLink to GO, a synthetic expression study is generated, and
// hypergeometric enrichment is computed over the whole GO taxonomy.
//
// Usage:
//
//	gmprofile -db gam.snap -chip NetAffx-HG-U133A -top 20
package main

import (
	"flag"
	"fmt"
	"os"

	"genmapper"
	"genmapper/internal/profile"
)

func main() {
	var (
		dbPath    = flag.String("db", "gam.snap", "database snapshot file")
		chip      = flag.String("chip", "NetAffx-HG-U133A", "microarray chip source (probe sets)")
		geneRep   = flag.String("generep", "Unigene", "gene representation source")
		annotator = flag.String("annotator", "LocusLink", "source providing GO annotations")
		ontology  = flag.String("ontology", "GO", "taxonomy source")
		seed      = flag.Int64("seed", 1, "study seed")
		bias      = flag.Int("bias", 8, "number of GO terms with injected differential bias")
		top       = flag.Int("top", 20, "report the top K enriched terms")
		fdr       = flag.Float64("fdr", 0.05, "Benjamini-Hochberg false discovery rate")
	)
	flag.Parse()

	sys, err := genmapper.LoadSnapshot(*dbPath)
	if err != nil {
		fail(err)
	}
	p, err := profile.NewPipeline(sys.Repo(), *chip, *geneRep, *annotator, *ontology)
	if err != nil {
		fail(err)
	}

	probes, err := p.ProbeAccessions()
	if err != nil {
		fail(err)
	}
	annotations, err := p.ProbeAnnotations()
	if err != nil {
		fail(err)
	}
	terms, err := p.TermAccessions()
	if err != nil {
		fail(err)
	}

	cfg := profile.DefaultStudyConfig()
	cfg.Seed = *seed
	cfg.BiasTerms = *bias
	study := profile.NewStudy(cfg, probes, annotations, terms)
	total, detected, differential := study.Counts()
	fmt.Printf("study: %d probed genes, %d detected, %d differentially expressed\n",
		total, detected, differential)
	fmt.Printf("injected bias terms: %v\n\n", study.BiasedTerms)

	enrichment, err := p.Run(study)
	if err != nil {
		fail(err)
	}
	fmt.Printf("enrichment over %d GO terms (population=%d, sample=%d):\n\n",
		len(enrichment.Results), enrichment.PopulationSize, enrichment.SampleSize)
	fmt.Print(enrichment.FormatTable(*top))
	fmt.Printf("\n%d terms significant at FDR %.2g (Benjamini-Hochberg)\n",
		enrichment.BenjaminiHochberg(*fdr), *fdr)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gmprofile:", err)
	os.Exit(1)
}
