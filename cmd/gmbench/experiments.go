package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"genmapper"
	"genmapper/internal/baseline/srs"
	"genmapper/internal/baseline/star"
	"genmapper/internal/eav"
	"genmapper/internal/gam"
	"genmapper/internal/gen"
	"genmapper/internal/ops"
	"genmapper/internal/parser"
	"genmapper/internal/profile"
	"genmapper/internal/sqldb"
	"genmapper/internal/wal"
)

// harness holds lazily-built shared fixtures so that one gmbench run
// imports the universe at most once.
type harness struct {
	seed    int64
	scale   float64
	uni     *gen.Universe
	sys     *genmapper.System
	elapsed time.Duration // universe import time, reported by expScale
}

func newHarness(seed int64, scale float64) *harness {
	return &harness{seed: seed, scale: scale, uni: gen.NewUniverse(gen.Config{Seed: seed, Scale: scale})}
}

// system imports the synthetic universe once and caches the result.
func (h *harness) system() (*genmapper.System, error) {
	if h.sys != nil {
		return h.sys, nil
	}
	sys, err := genmapper.New()
	if err != nil {
		return nil, err
	}
	fmt.Printf("(importing universe seed=%d scale=%g ...)\n", h.seed, h.scale)
	start := time.Now()
	if _, err := sys.ImportUniverse(h.uni, genmapper.ImportOptions{DeriveSubsumed: true}, nil); err != nil {
		return nil, err
	}
	h.elapsed = time.Since(start)
	st, _ := sys.Stats()
	fmt.Printf("(imported in %v: %s)\n\n", h.elapsed.Round(time.Millisecond), st)
	h.sys = sys
	return sys, nil
}

// ---------------------------------------------------------------------------
// E1 — Table 1

// table1Record is the locus of the paper's Figure 1 in LocusLink format.
const table1Record = `>>353
NAME: adenine phosphoribosyltransferase
HUGO: APRT | adenine phosphoribosyltransferase
LOCATION: 16q24
ENZYME: 2.4.2.7
GO: GO:0009116 | nucleoside metabolism
OMIM: 102600
UNIGENE: Hs.28914
`

func expTable1(h *harness) error {
	d, err := parser.Parse("locuslink", strings.NewReader(table1Record),
		eav.SourceInfo{Name: "LocusLink", Content: "gene"})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-10s %-12s %s\n", "Locus", "Target", "Accession", "Text")
	for _, r := range d.Records {
		if r.Target == eav.TargetName {
			continue // Table 1 lists cross-references
		}
		fmt.Printf("%-8s %-10s %-12s %s\n", r.Accession, r.Target, r.TargetAccession, r.Text)
	}
	return nil
}

// ---------------------------------------------------------------------------
// E2 — Table 2

// buildPairMapping creates an isolated repo with one mapping of n
// associations for operator micro-measurements.
func buildPairMapping(n int) (*gam.Repo, *ops.Mapping, error) {
	repo, err := gam.Open(sqldb.NewDB())
	if err != nil {
		return nil, nil, err
	}
	s, _, _ := repo.EnsureSource(gam.Source{Name: "S"})
	t, _, _ := repo.EnsureSource(gam.Source{Name: "T"})
	sSpecs := make([]gam.ObjectSpec, n)
	tSpecs := make([]gam.ObjectSpec, n)
	for i := 0; i < n; i++ {
		sSpecs[i] = gam.ObjectSpec{Accession: fmt.Sprintf("s%d", i)}
		tSpecs[i] = gam.ObjectSpec{Accession: fmt.Sprintf("t%d", i)}
	}
	sIDs, _, err := repo.EnsureObjects(s.ID, sSpecs)
	if err != nil {
		return nil, nil, err
	}
	tIDs, _, err := repo.EnsureObjects(t.ID, tSpecs)
	if err != nil {
		return nil, nil, err
	}
	rel, _, _ := repo.EnsureSourceRel(s.ID, t.ID, gam.RelFact)
	assocs := make([]gam.Assoc, n)
	for i := 0; i < n; i++ {
		assocs[i] = gam.Assoc{Object1: sIDs[i], Object2: tIDs[(i*7)%n]}
	}
	if _, err := repo.AddAssociations(rel, assocs, false); err != nil {
		return nil, nil, err
	}
	m, err := ops.Map(repo, s.ID, t.ID)
	return repo, m, err
}

func expTable2(h *harness) error {
	fmt.Printf("%-18s %10s %12s %12s\n", "operation", "assocs", "result", "latency")
	for _, n := range []int{1000, 10000, 100000} {
		repo, m, err := buildPairMapping(n)
		if err != nil {
			return err
		}
		s := repo.SourceByName("S")
		t := repo.SourceByName("T")

		start := time.Now()
		mm, err := ops.Map(repo, s.ID, t.ID)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %10d %12d %12v\n", "Map(S,T)", n, mm.Len(), time.Since(start).Round(time.Microsecond))

		start = time.Now()
		dom := ops.Domain(m)
		fmt.Printf("%-18s %10d %12d %12v\n", "Domain", n, len(dom), time.Since(start).Round(time.Microsecond))

		start = time.Now()
		rng := ops.Range(m)
		fmt.Printf("%-18s %10d %12d %12v\n", "Range", n, len(rng), time.Since(start).Round(time.Microsecond))

		sub := ops.NewObjectSet(dom[:len(dom)/2]...)
		start = time.Now()
		rd := ops.RestrictDomain(m, sub)
		fmt.Printf("%-18s %10d %12d %12v\n", "RestrictDomain", n, rd.Len(), time.Since(start).Round(time.Microsecond))

		rsub := ops.NewObjectSet(rng[:len(rng)/2]...)
		start = time.Now()
		rr := ops.RestrictRange(m, rsub)
		fmt.Printf("%-18s %10d %12d %12v\n", "RestrictRange", n, rr.Len(), time.Since(start).Round(time.Microsecond))
	}
	return nil
}

// ---------------------------------------------------------------------------
// E3 — Figure 3

func expFigure3(h *harness) error {
	sys, err := h.system()
	if err != nil {
		return err
	}
	// A handful of loci, annotated by the same targets the figure shows.
	var accs []string
	for i := 1; i <= 8; i++ {
		accs = append(accs, h.uni.Accession("LocusLink", i*3))
	}
	table, err := sys.AnnotationView(genmapper.Query{
		Source:     "LocusLink",
		Accessions: accs,
		Targets: []genmapper.Target{
			{Source: "Hugo"}, {Source: "GO"}, {Source: "Location"}, {Source: "OMIM"},
		},
		Mode: "OR",
	})
	if err != nil {
		return err
	}
	return table.WriteText(fmtWriter{})
}

// fmtWriter adapts fmt printing to io.Writer for table output.
type fmtWriter struct{}

func (fmtWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}

// ---------------------------------------------------------------------------
// E4 — Figure 5

func expFigure5(h *harness) error {
	sys, err := h.system()
	if err != nil {
		return err
	}
	targets := []string{"Hugo", "GO", "Location", "OMIM", "Unigene", "RefSeq", "Ensembl", "dbSNP"}
	fmt.Printf("%-3s %-5s %-8s %10s %12s\n", "m", "mode", "negated", "rows", "latency")
	for m := 1; m <= len(targets); m++ {
		for _, mode := range []string{"OR", "AND"} {
			for _, negate := range []bool{false, true} {
				specs := make([]genmapper.Target, m)
				for i := 0; i < m; i++ {
					specs[i] = genmapper.Target{Source: targets[i]}
				}
				if negate {
					specs[m-1].Negate = true
				}
				start := time.Now()
				table, err := sys.AnnotationView(genmapper.Query{
					Source: "LocusLink", Targets: specs, Mode: mode,
				})
				if err != nil {
					return err
				}
				lat := time.Since(start)
				neg := "-"
				if negate {
					neg = "last"
				}
				fmt.Printf("%-3d %-5s %-8s %10d %12v\n", m, mode, neg, table.RowCount(), lat.Round(time.Millisecond))
			}
		}
	}
	fmt.Println("\nexpected shape: AND prunes rows (and often time) vs OR; negation inverts selectivity")
	return nil
}

// ---------------------------------------------------------------------------
// E5 — import pipeline

func expImport(h *harness) error {
	// Fresh system so duplicate-elimination numbers are clean.
	sys, err := genmapper.New()
	if err != nil {
		return err
	}
	u := h.uni
	goData, err := u.Dataset("GO")
	if err != nil {
		return err
	}
	llData, err := u.Dataset("LocusLink")
	if err != nil {
		return err
	}

	report := func(label string, st *genmapper.ImportStats, d time.Duration) {
		fmt.Printf("%-28s objects(new=%d dup=%d) assocs(new=%d dup=%d) targets=%d in %v\n",
			label, st.ObjectsNew, st.ObjectsDup, st.AssocsNew, st.AssocsDup, st.TargetObjects,
			d.Round(time.Millisecond))
	}

	start := time.Now()
	st, err := sys.ImportDataset(goData, genmapper.ImportOptions{DeriveSubsumed: true})
	if err != nil {
		return err
	}
	report("import GO (first)", st, time.Since(start))

	start = time.Now()
	st, err = sys.ImportDataset(llData, genmapper.ImportOptions{})
	if err != nil {
		return err
	}
	report("import LocusLink (first)", st, time.Since(start))

	start = time.Now()
	st, err = sys.ImportDataset(llData, genmapper.ImportOptions{})
	if err != nil {
		return err
	}
	report("re-import LocusLink", st, time.Since(start))
	if st.ObjectsNew != 0 || st.AssocsNew != 0 {
		return fmt.Errorf("duplicate elimination failed: %d new objects, %d new assocs", st.ObjectsNew, st.AssocsNew)
	}
	fmt.Println("\nexpected shape: re-import creates 0 objects/assocs (duplicate elimination, §4.1)")
	return nil
}

// ---------------------------------------------------------------------------
// E6 — derived relationships

func expDerived(h *harness) error {
	sys, err := h.system()
	if err != nil {
		return err
	}
	paths := [][]string{
		{"NetAffx-HG-U133A", "Unigene"},
		{"NetAffx-HG-U133A", "Unigene", "LocusLink"},
		{"NetAffx-HG-U133A", "Unigene", "LocusLink", "GO"},
		{"Hugo", "LocusLink", "Unigene", "GenBank"},
		{"Hugo", "LocusLink", "Unigene", "dbEST"},
	}
	fmt.Printf("%-50s %8s %12s\n", "compose path", "assocs", "latency")
	for _, p := range paths {
		start := time.Now()
		m, err := sys.ComposePath(p)
		if err != nil {
			return err
		}
		fmt.Printf("%-50s %8d %12v\n", strings.Join(p, "->"), m.Len(), time.Since(start).Round(time.Millisecond))
	}

	start := time.Now()
	n, err := sys.DeriveSubsumed("GO")
	if err != nil {
		return err
	}
	fmt.Printf("\nSubsumed(GO): %d terms -> %d subsumed associations in %v\n",
		h.uni.Count("GO"), n, time.Since(start).Round(time.Millisecond))
	fmt.Println("\nexpected shape: composed size shrinks down long paths (fan-out x coverage); subsumption is superlinear in depth")
	return nil
}

// ---------------------------------------------------------------------------
// E7 — deployment scale

func expScale(h *harness) error {
	sys, err := h.system()
	if err != nil {
		return err
	}
	st, err := sys.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %12s %14s\n", "counter", "paper (§5)", "this run")
	paperObjects := 2_000_000.0
	paperAssocs := 5_000_000.0
	fmt.Printf("%-22s %12s %14d  (target ~%.0f at scale %g)\n", "objects", "~2,000,000", st.Objects, paperObjects*h.scale, h.scale)
	fmt.Printf("%-22s %12s %14d\n", "sources", ">60", st.Sources)
	fmt.Printf("%-22s %12s %14d  (target ~%.0f at scale %g)\n", "associations", "~5,000,000", st.Associations, paperAssocs*h.scale, h.scale)
	fmt.Printf("%-22s %12s %14d\n", "mappings", ">500", st.Mappings)
	fmt.Printf("\nassociations by type: ")
	for _, typ := range []gam.RelType{gam.RelFact, gam.RelSimilarity, gam.RelIsA, gam.RelContains, gam.RelSubsumed, gam.RelComposed} {
		fmt.Printf("%s=%d ", typ, st.ByType[typ])
	}
	fmt.Printf("\nimport wall-clock: %v\n", h.elapsed.Round(time.Millisecond))
	return nil
}

// ---------------------------------------------------------------------------
// E8 — path discovery

func expPaths(h *harness) error {
	sys, err := h.system()
	if err != nil {
		return err
	}
	pairs := [][2]string{
		{"NetAffx-HG-U133A", "GO"},
		{"NetAffx-HG-U95A", "OMIM"},
		{"Hugo", "SwissProt"},
		{"dbSNP", "GO"},
		{"PDB", "LocusLink"},
	}
	fmt.Printf("%-24s %-12s %12s  %s\n", "from", "to", "latency", "shortest path")
	for _, p := range pairs {
		start := time.Now()
		path, err := sys.FindPath(p[0], p[1])
		lat := time.Since(start)
		if err != nil {
			fmt.Printf("%-24s %-12s %12v  (no path: %v)\n", p[0], p[1], lat.Round(time.Microsecond), err)
			continue
		}
		fmt.Printf("%-24s %-12s %12v  %s\n", p[0], p[1], lat.Round(time.Microsecond), strings.Join(path, " -> "))
	}
	// Constrained path with an intermediate.
	path, err := sys.FindPathVia("NetAffx-HG-U133A", "LocusLink", "GO")
	if err != nil {
		return err
	}
	fmt.Printf("\nvia LocusLink: %s\n", strings.Join(path, " -> "))
	g := sys.Graph()
	fmt.Printf("graph: %d sources, %d traversable mappings\n", len(g.Sources()), g.EdgeCount())
	return nil
}

// ---------------------------------------------------------------------------
// E9 — functional profiling

func expProfile(h *harness) error {
	sys, err := h.system()
	if err != nil {
		return err
	}
	p, err := profile.NewPipeline(sys.Repo(), "NetAffx-HG-U133A", "Unigene", "LocusLink", "GO")
	if err != nil {
		return err
	}
	probes, err := p.ProbeAccessions()
	if err != nil {
		return err
	}
	annotations, err := p.ProbeAnnotations()
	if err != nil {
		return err
	}
	terms, err := p.TermAccessions()
	if err != nil {
		return err
	}
	cfg := profile.DefaultStudyConfig()
	cfg.Seed = h.seed
	study := profile.NewStudy(cfg, probes, annotations, terms)
	total, detected, differential := study.Counts()
	fmt.Printf("study: %d probes, %d detected, %d differential (paper: 40k/20k/2.5k shape)\n",
		total, detected, differential)

	start := time.Now()
	e, err := p.Run(study)
	if err != nil {
		return err
	}
	fmt.Printf("enrichment over %d terms in %v\n\n", len(e.Results), time.Since(start).Round(time.Millisecond))
	fmt.Print(e.FormatTable(10))

	// Recovery check: injected bias terms (or their ancestors) should rank
	// near the top.
	biased := make(map[string]bool)
	for _, t := range study.BiasedTerms {
		biased[t] = true
	}
	hits := 0
	for _, r := range e.TopK(25) {
		if biased[r.Term] {
			hits++
		}
	}
	fmt.Printf("\ninjected bias terms recovered in top 25: %d of %d\n", hits, len(study.BiasedTerms))
	return nil
}

// ---------------------------------------------------------------------------
// E10 — ablation: GAM vs star schema

func expAblationSchema(h *harness) error {
	u := h.uni
	llData, err := u.Dataset("LocusLink")
	if err != nil {
		return err
	}

	// Star warehouse path.
	w, err := star.Build(sqldb.NewDB())
	if err != nil {
		return err
	}
	ddlBefore := w.DDLCount()
	start := time.Now()
	loaded, dropped, err := w.LoadDataset(llData)
	if err != nil {
		return err
	}
	starLoad := time.Since(start)

	// GAM path.
	sys, err := genmapper.New()
	if err != nil {
		return err
	}
	start = time.Now()
	st, err := sys.ImportDataset(llData, genmapper.ImportOptions{})
	if err != nil {
		return err
	}
	gamLoad := time.Since(start)

	fmt.Printf("%-34s %14s %14s\n", "", "star schema", "generic GAM")
	fmt.Printf("%-34s %14d %14d\n", "DDL to create schema (one-time)", ddlBefore, gam.SchemaStatementCount())
	fmt.Printf("%-34s %14d %14d\n", "annotations stored", loaded, st.AssocsNew)
	fmt.Printf("%-34s %14d %14d\n", "annotations silently dropped", dropped, 0)
	fmt.Printf("%-34s %14v %14v\n", "load time", starLoad.Round(time.Millisecond), gamLoad.Round(time.Millisecond))

	// Schema churn: a new, unanticipated target source arrives.
	newTarget := eav.NewDataset(eav.SourceInfo{Name: "LocusLink"})
	newTarget.Add(u.Accession("LocusLink", 1), "InterPro", "IPR000001", "")
	before := w.DDLCount()
	if err := w.AddTarget("InterPro"); err != nil {
		return err
	}
	starDDL := w.DDLCount() - before
	if _, _, err := w.LoadDataset(newTarget); err != nil {
		return err
	}
	if _, err := sys.ImportDataset(newTarget, genmapper.ImportOptions{}); err != nil {
		return err
	}
	fmt.Printf("%-34s %14d %14d\n", "DDL to absorb new source", starDDL, 0)

	// Figure-3 query on both.
	accs := []string{u.Accession("LocusLink", 3), u.Accession("LocusLink", 6), u.Accession("LocusLink", 9)}
	start = time.Now()
	rs, err := w.AnnotationView(accs, []string{"Hugo", "GO"})
	if err != nil {
		return err
	}
	starQuery := time.Since(start)
	start = time.Now()
	table, err := sys.AnnotationView(genmapper.Query{
		Source: "LocusLink", Accessions: accs,
		Targets: []genmapper.Target{{Source: "Hugo"}, {Source: "GO"}},
	})
	if err != nil {
		return err
	}
	gamQuery := time.Since(start)
	fmt.Printf("%-34s %14d %14d\n", "Figure-3 view rows", len(rs.Rows), table.RowCount())
	fmt.Printf("%-34s %14v %14v\n", "Figure-3 view latency", starQuery.Round(time.Microsecond), gamQuery.Round(time.Microsecond))
	fmt.Println("\nexpected shape: star drops unanticipated data and needs DDL per new source; GAM needs none")
	return nil
}

// ---------------------------------------------------------------------------
// E11 — ablation: materialization

func expAblationMaterialize(h *harness) error {
	sys, err := h.system()
	if err != nil {
		return err
	}
	path := []string{"NetAffx-HG-U133A", "Unigene", "LocusLink", "GO"}
	const repeats = 10

	start := time.Now()
	var m *genmapper.Mapping
	for i := 0; i < repeats; i++ {
		m, err = sys.ComposePath(path)
		if err != nil {
			return err
		}
	}
	onTheFly := time.Since(start) / repeats

	start = time.Now()
	if err := sys.Materialize(m); err != nil {
		return err
	}
	matCost := time.Since(start)

	chip := sys.Repo().SourceByName(path[0])
	goSrc := sys.Repo().SourceByName("GO")
	start = time.Now()
	for i := 0; i < repeats; i++ {
		if _, err := ops.Map(sys.Repo(), chip.ID, goSrc.ID); err != nil {
			return err
		}
	}
	lookup := time.Since(start) / repeats

	fmt.Printf("composed mapping size: %d associations\n", m.Len())
	fmt.Printf("%-38s %12v\n", "on-the-fly Compose (per query)", onTheFly.Round(time.Microsecond))
	fmt.Printf("%-38s %12v\n", "one-time materialization cost", matCost.Round(time.Microsecond))
	fmt.Printf("%-38s %12v\n", "materialized Map lookup (per query)", lookup.Round(time.Microsecond))
	if lookup > 0 {
		breakeven := float64(matCost) / float64(onTheFly-lookup)
		if onTheFly > lookup {
			fmt.Printf("break-even after ~%.1f reuses\n", breakeven)
		}
	}
	fmt.Println("\nexpected shape: materialization pays off after a handful of reuses")
	return nil
}

// ---------------------------------------------------------------------------
// E12 — ablation: SRS navigation vs GenerateView

func expAblationSRS(h *harness) error {
	sys, err := h.system()
	if err != nil {
		return err
	}
	u := h.uni

	// Index the sources an SRS deployment would replicate.
	idx := srs.NewIndex()
	for _, name := range []string{"LocusLink", "Hugo", "GO", "OMIM"} {
		d, err := u.Dataset(name)
		if err != nil {
			return err
		}
		if err := idx.AddDataset(d); err != nil {
			return err
		}
	}
	targets := []string{"Hugo", "GO", "OMIM"}
	fmt.Printf("%-8s %16s %16s %16s %16s\n", "objects", "srs lookups", "srs latency", "gam latency", "gam rows")
	for _, k := range []int{10, 100, 1000} {
		if k > u.Count("LocusLink") {
			break
		}
		accs := make([]string, k)
		for i := 0; i < k; i++ {
			accs[i] = u.Accession("LocusLink", i)
		}
		idx.ResetLookups()
		start := time.Now()
		idx.AnnotateSet("LocusLink", accs, targets)
		srsLat := time.Since(start)
		lookups := idx.Lookups()

		start = time.Now()
		table, err := sys.AnnotationView(genmapper.Query{
			Source: "LocusLink", Accessions: accs,
			Targets: []genmapper.Target{{Source: "Hugo"}, {Source: "GO"}, {Source: "OMIM"}},
		})
		if err != nil {
			return err
		}
		gamLat := time.Since(start)
		fmt.Printf("%-8d %16d %16v %16v %16d\n", k, lookups, srsLat.Round(time.Microsecond), gamLat.Round(time.Microsecond), table.RowCount())
	}
	// The qualitative gap: SRS cannot reach indirect targets at all.
	probe := u.Accession("Unigene", 0)
	d, err := u.Dataset("Unigene")
	if err != nil {
		return err
	}
	if err := idx.AddDataset(d); err != nil {
		return err
	}
	direct := idx.Navigate("Unigene", probe, "GO")
	table, err := sys.AnnotationView(genmapper.Query{
		Source: "Unigene", Accessions: []string{probe},
		Targets: []genmapper.Target{{Source: "GO"}},
	})
	if err != nil {
		return err
	}
	viaCompose := 0
	for _, row := range table.Rows {
		if row[1] != "" {
			viaCompose++
		}
	}
	fmt.Printf("\nindirect target (Unigene -> GO): srs direct links=%d, gam composed annotations=%d\n",
		len(direct), viaCompose)
	fmt.Println("\nexpected shape: srs lookups grow as objects x targets and indirect targets stay unreachable")
	return nil
}

// ---------------------------------------------------------------------------
// E13 — durability: WAL write path under each fsync policy + group commit

// expWALDurability imports a small universe into a durable system under
// every fsync policy and measures the write-path cost against the
// in-memory baseline, then demonstrates group commit folding concurrent
// committers into fewer fsyncs.
func expWALDurability(h *harness) error {
	u := gen.NewUniverse(gen.Config{Seed: h.seed, Scale: min(h.scale, 0.005)})

	importInto := func(sys *genmapper.System) (time.Duration, error) {
		start := time.Now()
		_, err := sys.ImportUniverse(u, genmapper.ImportOptions{DeriveSubsumed: true}, nil)
		return time.Since(start), err
	}

	fmt.Printf("%-12s %12s %12s %12s %14s\n", "mode", "import", "appends", "fsyncs", "log bytes")
	memSys, err := genmapper.New()
	if err != nil {
		return err
	}
	memT, err := importInto(memSys)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %12v %12s %12s %14s\n", "memory", memT.Round(time.Millisecond), "-", "-", "-")

	for _, policy := range []wal.SyncPolicy{wal.SyncOff, wal.SyncGroup, wal.SyncAlways} {
		dir, err := os.MkdirTemp("", "gmbench-wal-")
		if err != nil {
			return err
		}
		sys, err := genmapper.OpenDurable(dir, genmapper.DurableOptions{Sync: policy})
		if err != nil {
			return err
		}
		t, err := importInto(sys)
		if err != nil {
			return err
		}
		ws := sys.SQLWALStats()
		fmt.Printf("wal-%-8s %12v %12d %12d %14d\n", policy, t.Round(time.Millisecond), ws.Appends, ws.Fsyncs, ws.SizeBytes)
		if err := sys.Close(); err != nil {
			return err
		}
		if err := os.RemoveAll(dir); err != nil {
			return err
		}
	}

	// Group commit: concurrent committers vs. fsync count.
	dir, err := os.MkdirTemp("", "gmbench-walgc-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	sys, err := genmapper.OpenDurable(dir, genmapper.DurableOptions{Sync: wal.SyncGroup})
	if err != nil {
		return err
	}
	defer sys.Close()
	db := sys.DB()
	if _, err := db.Exec("CREATE TABLE bench_gc (g INTEGER, i INTEGER)"); err != nil {
		return err
	}
	base := sys.SQLWALStats()
	const goroutines, perG = 8, 100
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := db.Exec("INSERT INTO bench_gc (g, i) VALUES (?, ?)", g, i); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}
	elapsed := time.Since(start)
	ws := sys.SQLWALStats()
	commits := ws.Appends - base.Appends
	fsyncs := ws.Fsyncs - base.Fsyncs
	fmt.Printf("\ngroup commit: %d concurrent committers, %d commits in %v -> %d fsyncs (%.1f commits/fsync, max group %d)\n",
		goroutines, commits, elapsed.Round(time.Millisecond), fsyncs,
		float64(commits)/float64(max(fsyncs, 1)), ws.MaxGroupSize)
	fmt.Println("\nexpected shape: off ~ memory, group ~ always when single-writer, and commits/fsync > 1 under concurrency")
	return nil
}

// ---------------------------------------------------------------------------
// E14 — partition-parallel execution

// expParallel measures serial vs partition-parallel execution of the three
// full-table shapes the parallel engine accelerates — scan+filter,
// aggregate, and export — over a 200k-row table at 1/2/4/8 partitions.
// With one partition the parallel paths are disabled, so that row is the
// serial baseline. Speedups need real cores: on a single-core host the
// parallel rows show only the exchange overhead.
func expParallel(h *harness) error {
	const rows = 200000
	db := sqldb.NewDB()
	db.SetParallelMinRows(1)
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT, f REAL)"); err != nil {
		return err
	}
	fmt.Printf("(building %d-row table, GOMAXPROCS=%d ...)\n\n", rows, runtime.GOMAXPROCS(0))
	const chunk = 200
	for start := 0; start < rows; start += chunk {
		sql := "INSERT INTO t VALUES "
		args := make([]any, 0, chunk*4)
		for i := start; i < start+chunk; i++ {
			if i > start {
				sql += ", "
			}
			sql += "(?, ?, ?, ?)"
			args = append(args, i, i%97, fmt.Sprintf("val%d", i), float64(i%400)/4)
		}
		if _, err := db.Exec(sql, args...); err != nil {
			return err
		}
	}

	scan := func() error {
		n := 0
		err := db.QueryEach("SELECT id, v FROM t WHERE v LIKE 'val%' AND k < 90", func(row []sqldb.Value) error {
			n++
			return nil
		})
		if err == nil && n == 0 {
			return fmt.Errorf("scan matched nothing")
		}
		return err
	}
	agg := func() error {
		rs, err := db.Query("SELECT k, COUNT(*), SUM(id), MIN(f), MAX(v) FROM t GROUP BY k")
		if err == nil && rs.Len() != 97 {
			return fmt.Errorf("aggregate groups = %d", rs.Len())
		}
		return err
	}
	export := func() error {
		cur, err := db.QueryCursor("SELECT id, k, v, f FROM t")
		if err != nil {
			return err
		}
		defer cur.Close()
		w := bufio.NewWriterSize(io.Discard, 1<<16)
		for {
			row, err := cur.Next()
			if err != nil {
				return err
			}
			if row == nil {
				return w.Flush()
			}
			for i, v := range row {
				if i > 0 {
					w.WriteByte('\t')
				}
				w.WriteString(sqldb.FormatValue(v))
			}
			w.WriteByte('\n')
		}
	}
	best := func(fn func() error) (time.Duration, error) {
		bestD := time.Duration(0)
		for r := 0; r < 3; r++ {
			start := time.Now()
			if err := fn(); err != nil {
				return 0, err
			}
			if d := time.Since(start); bestD == 0 || d < bestD {
				bestD = d
			}
		}
		return bestD, nil
	}

	fmt.Printf("%-10s %12s %12s %12s %28s\n", "partitions", "scan", "aggregate", "export", "speedup (scan/agg/export)")
	var base [3]time.Duration
	for _, parts := range []int{1, 2, 4, 8} {
		db.SetPartitions(parts)
		db.SetParallelism(parts)
		var ds [3]time.Duration
		for i, fn := range []func() error{scan, agg, export} {
			d, err := best(fn)
			if err != nil {
				return err
			}
			ds[i] = d
		}
		if parts == 1 {
			base = ds
		}
		fmt.Printf("%-10d %12v %12v %12v %9.2fx /%6.2fx /%6.2fx\n",
			parts, ds[0].Round(time.Microsecond), ds[1].Round(time.Microsecond), ds[2].Round(time.Microsecond),
			float64(base[0])/float64(ds[0]), float64(base[1])/float64(ds[1]), float64(base[2])/float64(ds[2]))
	}
	ps := db.ParallelStats()
	fmt.Printf("\nparallel ops: scans=%d aggregates=%d (write collects=%d)\n",
		ps.ParallelScans, ps.ParallelAggregates, ps.ParallelWriteCollects)
	fmt.Println("expected shape: scan/aggregate/export scale with partitions up to the core count; partitions=1 is the serial engine")
	return nil
}

// ---------------------------------------------------------------------------
// E15 — vectorized (columnar batch) execution

// expVectorized measures row vs vectorized execution of the four full-table
// shapes the batch engine accelerates — scan+filter, filter-only, grouped
// aggregate, and export streaming — over a 200k-row table at 1/2/4/8
// partitions. Every cell runs the same query twice, batch execution off
// then on, so each ratio compares the two engines at the same partition
// count. Unlike E14 the win does not need multiple cores: the kernels cut
// per-row interpretation cost, so the ratio holds even on one core.
func expVectorized(h *harness) error {
	const rows = 200000
	db := sqldb.NewDB()
	db.SetParallelMinRows(1)
	db.SetBatchMinRows(1)
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT, f REAL)"); err != nil {
		return err
	}
	fmt.Printf("(building %d-row table, GOMAXPROCS=%d ...)\n\n", rows, runtime.GOMAXPROCS(0))
	const chunk = 200
	for start := 0; start < rows; start += chunk {
		sql := "INSERT INTO t VALUES "
		args := make([]any, 0, chunk*4)
		for i := start; i < start+chunk; i++ {
			if i > start {
				sql += ", "
			}
			sql += "(?, ?, ?, ?)"
			args = append(args, i, i%97, fmt.Sprintf("val%d", i), float64(i%400)/4)
		}
		if _, err := db.Exec(sql, args...); err != nil {
			return err
		}
	}

	scan := func() error {
		n := 0
		err := db.QueryEach("SELECT id, v FROM t WHERE k < 90", func(row []sqldb.Value) error {
			n++
			return nil
		})
		if err == nil && n == 0 {
			return fmt.Errorf("scan matched nothing")
		}
		return err
	}
	filter := func() error {
		n := 0
		err := db.QueryEach("SELECT id FROM t WHERE k BETWEEN 10 AND 19 AND f < 50", func(row []sqldb.Value) error {
			n++
			return nil
		})
		if err == nil && n == 0 {
			return fmt.Errorf("filter matched nothing")
		}
		return err
	}
	agg := func() error {
		rs, err := db.Query("SELECT k, COUNT(*), SUM(id), MIN(f), MAX(v) FROM t GROUP BY k")
		if err == nil && rs.Len() != 97 {
			return fmt.Errorf("aggregate groups = %d", rs.Len())
		}
		return err
	}
	export := func() error {
		// The engine half of view/export streaming: every column of every
		// row through QueryEach. Formatting is sink cost, identical on
		// both engines, so it stays out of the measurement.
		n := 0
		err := db.QueryEach("SELECT id, k, v, f FROM t", func(row []sqldb.Value) error {
			n++
			return nil
		})
		if err == nil && n != rows {
			return fmt.Errorf("export streamed %d rows", n)
		}
		return err
	}
	best := func(fn func() error) (time.Duration, error) {
		bestD := time.Duration(0)
		for r := 0; r < 3; r++ {
			start := time.Now()
			if err := fn(); err != nil {
				return 0, err
			}
			if d := time.Since(start); bestD == 0 || d < bestD {
				bestD = d
			}
		}
		return bestD, nil
	}

	shapes := []func() error{scan, filter, agg, export}
	fmt.Printf("%-10s %-6s %12s %12s %12s %12s %34s\n",
		"partitions", "batch", "scan", "filter", "aggregate", "export", "speedup (scan/filter/agg/export)")
	for _, parts := range []int{1, 2, 4, 8} {
		db.SetPartitions(parts)
		db.SetParallelism(parts)
		var row, vec [4]time.Duration
		for _, batch := range []bool{false, true} {
			db.SetBatchExecution(batch)
			for i, fn := range shapes {
				d, err := best(fn)
				if err != nil {
					return err
				}
				if batch {
					vec[i] = d
				} else {
					row[i] = d
				}
			}
		}
		fmt.Printf("%-10d %-6s %12v %12v %12v %12v\n",
			parts, "off", row[0].Round(time.Microsecond), row[1].Round(time.Microsecond),
			row[2].Round(time.Microsecond), row[3].Round(time.Microsecond))
		fmt.Printf("%-10s %-6s %12v %12v %12v %12v %10.2fx /%6.2fx /%6.2fx /%6.2fx\n",
			"", "on", vec[0].Round(time.Microsecond), vec[1].Round(time.Microsecond),
			vec[2].Round(time.Microsecond), vec[3].Round(time.Microsecond),
			float64(row[0])/float64(vec[0]), float64(row[1])/float64(vec[1]),
			float64(row[2])/float64(vec[2]), float64(row[3])/float64(vec[3]))
	}
	bs := db.BatchStats()
	fmt.Printf("\nbatch ops: scans=%d aggregates=%d (rows/batch=%d)\n",
		bs.BatchScans, bs.BatchAggregates, bs.RowsPerBatch)
	fmt.Println("expected shape: batch=on beats batch=off at every partition count; aggregate and")
	fmt.Println("export reach >=3x on quiet hardware (gated 3-run medians live in BENCH_pr7.json)")
	return nil
}

// ---------------------------------------------------------------------------
// E16 — MVCC snapshot isolation under mixed read/write load

// expConcurrency measures what snapshot isolation buys a mixed workload:
// at 1/2/4/8 reader clients plus one writer, each cell runs the same
// point-read/short-range mix for a fixed interval in lock mode and again
// under MVCC, and reports reader and writer throughput. The second table
// is the stall probe: a bulk UPDATE holds the write path while one reader
// issues point reads, and the worst read latency is recorded — in lock
// mode that latency is the UPDATE's duration (readers wait on db.mu),
// under MVCC the reader keeps answering from its snapshot.
func expConcurrency(h *harness) error {
	const rows = 100000
	const interval = 250 * time.Millisecond
	db := sqldb.NewDB()
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT)"); err != nil {
		return err
	}
	if _, err := db.Exec("CREATE INDEX idx_k ON t (k)"); err != nil {
		return err
	}
	fmt.Printf("(building %d-row table, GOMAXPROCS=%d ...)\n\n", rows, runtime.GOMAXPROCS(0))
	const chunk = 200
	for start := 0; start < rows; start += chunk {
		sql := "INSERT INTO t VALUES "
		args := make([]any, 0, chunk*3)
		for i := start; i < start+chunk; i++ {
			if i > start {
				sql += ", "
			}
			sql += "(?, ?, ?)"
			args = append(args, i, i%97, fmt.Sprintf("val%d", i))
		}
		if _, err := db.Exec(sql, args...); err != nil {
			return err
		}
	}

	// One mixed-cell run: readers hammer point and short-range reads while
	// one writer updates single rows; returns reads/sec and writes/sec.
	cell := func(readers int) (readsPerSec, writesPerSec float64, err error) {
		var stop atomic.Bool
		var reads, writes atomic.Int64
		var firstErr error
		var mu sync.Mutex
		fail := func(e error) {
			mu.Lock()
			if firstErr == nil {
				firstErr = e
			}
			mu.Unlock()
		}
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				n := int64(0)
				for i := r; !stop.Load(); i++ {
					var qerr error
					if i%4 == 3 {
						_, qerr = db.Query("SELECT COUNT(*) FROM t WHERE k = ?", i%97)
					} else {
						_, qerr = db.Query("SELECT v FROM t WHERE id = ?", (i*2654435761)%rows)
					}
					if qerr != nil {
						fail(qerr)
						return
					}
					n++
				}
				reads.Add(n)
			}(r)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The writer is paced (2k updates/s target, caught up in bursts
			// because sleep granularity is coarse) so both modes face the
			// same write pressure and reads/s compares like for like; an
			// unpaced MVCC writer commits several times faster than lock
			// mode and the comparison degenerates into CPU arbitration.
			const writeRate = 2000.0
			start := time.Now()
			n := int64(0)
			for !stop.Load() {
				if n >= int64(time.Since(start).Seconds()*writeRate) {
					time.Sleep(200 * time.Microsecond)
					continue
				}
				if _, werr := db.Exec("UPDATE t SET v = ? WHERE id = ?", "w", int(n)%rows); werr != nil {
					fail(werr)
					return
				}
				n++
			}
			writes.Add(n)
		}()
		time.Sleep(interval)
		stop.Store(true)
		wg.Wait()
		if firstErr != nil {
			return 0, 0, firstErr
		}
		secs := interval.Seconds()
		return float64(reads.Load()) / secs, float64(writes.Load()) / secs, nil
	}

	fmt.Printf("%-8s %-6s %14s %14s %14s\n", "readers", "mode", "reads/s", "writes/s", "read speedup")
	for _, readers := range []int{1, 2, 4, 8} {
		var lockReads float64
		for _, mvcc := range []bool{false, true} {
			db.SetMVCC(mvcc)
			r, w, err := cell(readers)
			if err != nil {
				return err
			}
			mode := "lock"
			speedup := ""
			if mvcc {
				mode = "mvcc"
				speedup = fmt.Sprintf("%.2fx", r/lockReads)
			} else {
				lockReads = r
			}
			fmt.Printf("%-8d %-6s %14.0f %14.0f %14s\n", readers, mode, r, w, speedup)
		}
	}

	// Stall probe: while a bulk UPDATE runs, measure the worst latency of
	// a point read issued every millisecond.
	fmt.Println("\nreader latency while a bulk UPDATE holds the write path:")
	probe := func(mvcc bool) (worst time.Duration, updateTook time.Duration, err error) {
		db.SetMVCC(mvcc)
		done := make(chan error, 1)
		started := make(chan struct{})
		go func() {
			close(started)
			t0 := time.Now()
			_, uerr := db.Exec("UPDATE t SET v = ? WHERE k < 97", "bulk")
			updateTook = time.Since(t0)
			done <- uerr
		}()
		<-started
		for {
			select {
			case uerr := <-done:
				return worst, updateTook, uerr
			default:
			}
			t0 := time.Now()
			if _, rerr := db.Query("SELECT v FROM t WHERE id = 1"); rerr != nil {
				return 0, 0, rerr
			}
			if d := time.Since(t0); d > worst {
				worst = d
			}
			time.Sleep(time.Millisecond)
		}
	}
	for _, mvcc := range []bool{false, true} {
		worst, took, err := probe(mvcc)
		if err != nil {
			return err
		}
		mode := "lock"
		if mvcc {
			mode = "mvcc"
		}
		fmt.Printf("  %-6s worst read latency %12v   (bulk UPDATE took %v)\n", mode, worst.Round(time.Microsecond), took.Round(time.Millisecond))
	}
	// Multi-writer scaling: per-partition write latching lets writers on
	// disjoint partitions install and commit concurrently. Each writer
	// auto-commits single-row UPDATEs over its own rows; "spread" gives
	// every writer its own partition, "pinned" forces all four into ONE
	// partition — row-disjoint but latch-serialized, which is exactly the
	// global-writer shape every MVCC write had before the latches, measured
	// in the same run on the same machine.
	fmt.Println("\nmulti-writer commit throughput (row-disjoint UPDATE auto-commits):")
	db.SetMVCC(false)
	const wparts = 8
	db.SetPartitions(wparts)
	db.SetMVCC(true)
	wcell := func(writers int, pinned bool) (float64, error) {
		var stop atomic.Bool
		var commits atomic.Int64
		var firstErr error
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				n := int64(0)
				for k := 0; !stop.Load(); k++ {
					var id int
					if pinned {
						id = ((k*writers + w) * wparts) % rows // all in partition 0
					} else {
						id = (k*wparts + w) % rows // writer w stays in partition w
					}
					if _, werr := db.Exec("UPDATE t SET v = ? WHERE id = ?", "mw", id); werr != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = werr
						}
						mu.Unlock()
						return
					}
					n++
				}
				commits.Add(n)
			}(w)
		}
		time.Sleep(interval)
		stop.Store(true)
		wg.Wait()
		if firstErr != nil {
			return 0, firstErr
		}
		return float64(commits.Load()) / interval.Seconds(), nil
	}
	fmt.Printf("%-8s %-8s %14s %14s\n", "writers", "layout", "commits/s", "scaling")
	var spread1, spread4 float64
	for _, writers := range []int{1, 2, 4} {
		cps, err := wcell(writers, false)
		if err != nil {
			return err
		}
		if writers == 1 {
			spread1 = cps
		}
		if writers == 4 {
			spread4 = cps
		}
		fmt.Printf("%-8d %-8s %14.0f %13.2fx\n", writers, "spread", cps, cps/spread1)
	}
	pinned4, err := wcell(4, true)
	if err != nil {
		return err
	}
	fmt.Printf("%-8d %-8s %14.0f %13s\n", 4, "pinned", pinned4, "")
	fmt.Printf("\n4 spread writers vs 4 pinned (global-writer shape): %.2fx\n", spread4/pinned4)

	db.SetMVCC(false)
	st := db.MVCCStats()
	fmt.Printf("\nmvcc: epoch=%d commits=%d conflicts=%d latch_waits=%d background_vacuums=%d vacuum_runs=%d versions_vacuumed=%d\n",
		st.Epoch, st.Commits, st.Conflicts, st.LatchWaits, st.BackgroundVacuums, st.VacuumRuns, st.VersionsVacuumed)
	fmt.Println("expected shape: mvcc read throughput >= 2x lock mode at 4+ readers, the mvcc worst")
	fmt.Println("read latency stays orders of magnitude below the bulk UPDATE duration, and 4 spread")
	fmt.Println("writers commit >= 2x the pinned (latch-serialized) rate on 4+ cores")
	return nil
}
