// Command gmbench regenerates every table and figure of the paper's
// evaluation, plus the ablation experiments DESIGN.md calls out. Each
// experiment prints the rows/series the paper reports; absolute numbers
// differ from 2004 hardware, but the shape (who wins, by what factor,
// where crossovers fall) is the reproduction target.
//
// Usage:
//
//	gmbench -exp all -scale 0.01
//	gmbench -exp table1
//	gmbench -exp scale -scale 1.0      # full paper-scale universe
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// experiment is one reproducible table/figure.
type experiment struct {
	id   string
	desc string
	run  func(h *harness) error
}

var experiments = []experiment{
	{"table1", "Table 1: parsed EAV output for LocusLink locus 353", expTable1},
	{"table2", "Table 2: simple operations (Map, Domain, Range, Restrict*)", expTable2},
	{"figure3", "Figure 3: annotation view for LocusLink genes", expFigure3},
	{"figure5", "Figure 5: GenerateView sweep (targets x AND/OR x negation)", expFigure5},
	{"import", "Fig. 2/§4.1: two-phase import with duplicate elimination", expImport},
	{"derived", "§3: derived relationships (Compose, Subsumed)", expDerived},
	{"scale", "§5: deployment statistics (objects/sources/associations/mappings)", expScale},
	{"paths", "§5.1: mapping-path discovery in the source graph", expPaths},
	{"profile", "§5.2: large-scale gene functional profiling", expProfile},
	{"ablation-schema", "Ablation E10: generic GAM vs application-specific star schema", expAblationSchema},
	{"ablation-materialize", "Ablation E11: materialized Composed mapping vs on-the-fly Compose", expAblationMaterialize},
	{"ablation-srs", "Ablation E12: SRS-style link navigation vs set-oriented GenerateView", expAblationSRS},
	{"wal", "E13: durable write path — fsync policies and group commit", expWALDurability},
	{"parallel", "E14: partition-parallel scan/aggregate/export vs serial at 1/2/4/8 partitions", expParallel},
	{"vectorized", "E15: vectorized (columnar batch) vs row execution at 1/2/4/8 partitions", expVectorized},
	{"concurrency", "E16: MVCC vs lock-mode read/write throughput, writer-stall probe, multi-writer latch scaling", expConcurrency},
}

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id or 'all' (ids: "+idList()+")")
		seed  = flag.Int64("seed", 1, "universe seed")
		scale = flag.Float64("scale", 0.01, "universe scale factor (1.0 = paper scale)")
	)
	flag.Parse()

	h := newHarness(*seed, *scale)
	want := strings.Split(*exp, ",")
	runAll := len(want) == 1 && want[0] == "all"
	selected := make(map[string]bool)
	for _, id := range want {
		selected[strings.TrimSpace(id)] = true
	}

	ran := 0
	for _, e := range experiments {
		if !runAll && !selected[e.id] {
			continue
		}
		fmt.Printf("==[%s]== %s\n\n", e.id, e.desc)
		if err := e.run(h); err != nil {
			fmt.Fprintf(os.Stderr, "gmbench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "gmbench: no experiment matched %q (ids: %s)\n", *exp, idList())
		os.Exit(2)
	}
}

func idList() string {
	ids := make([]string, len(experiments))
	for i, e := range experiments {
		ids[i] = e.id
	}
	sort.Strings(ids)
	return strings.Join(ids, ", ")
}
