// Command gmquery generates annotation views from an imported database
// snapshot (the CLI counterpart of the paper's Figure 3 / Figure 6).
//
// Usage:
//
//	gmquery -db gam.snap -source LocusLink -targets Hugo,GO -mode OR
//	gmquery -db gam.snap -source LocusLink -acc 1,2,3 -targets 'Hugo,!OMIM' -mode AND -format tsv
//	gmquery -db gam.snap -path Unigene,GO
//	gmquery -db gam.snap -sources
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"genmapper"
)

func main() {
	var (
		dbPath  = flag.String("db", "gam.snap", "database snapshot file")
		source  = flag.String("source", "", "source to annotate")
		accs    = flag.String("acc", "", "comma-separated source accessions (empty = whole source)")
		targets = flag.String("targets", "", "comma-separated targets; prefix ! negates; name=acc1|acc2 restricts target objects")
		mode    = flag.String("mode", "OR", "mapping combination: AND or OR")
		format  = flag.String("format", "text", "output format: text, tsv, csv, json")
		text    = flag.Bool("text", false, "include object descriptions in cells")
		path    = flag.String("path", "", "find the shortest mapping path between two comma-separated sources")
		via     = flag.String("via", "", "required intermediate source for -path")
		sources = flag.Bool("sources", false, "list imported sources")
		limit   = flag.Int("limit", 0, "print at most this many rows (0 = all)")
		offset  = flag.Int("offset", 0, "skip this many rows before printing")
		stats   = flag.Bool("cachestats", false, "print mapping-cache hit/miss counters after the query")
	)
	flag.Parse()

	sys, err := genmapper.LoadSnapshot(*dbPath)
	if err != nil {
		fail(err)
	}

	switch {
	case *sources:
		for _, s := range sys.Sources() {
			fmt.Printf("%-20s %-8s %-8s release=%s\n", s.Name, s.Content, s.Structure, s.Release)
		}
		return
	case *path != "":
		ends := strings.Split(*path, ",")
		if len(ends) != 2 {
			fail(fmt.Errorf("-path needs exactly two sources, got %q", *path))
		}
		var p []string
		if *via != "" {
			p, err = sys.FindPathVia(strings.TrimSpace(ends[0]), *via, strings.TrimSpace(ends[1]))
		} else {
			p, err = sys.FindPath(strings.TrimSpace(ends[0]), strings.TrimSpace(ends[1]))
		}
		if err != nil {
			fail(err)
		}
		fmt.Println(strings.Join(p, " -> "))
		return
	}

	if *source == "" || *targets == "" {
		fmt.Fprintln(os.Stderr, "gmquery: -source and -targets are required (or use -sources / -path)")
		flag.Usage()
		os.Exit(2)
	}

	q := genmapper.Query{Source: *source, Mode: *mode, WithText: *text, Limit: *limit, Offset: *offset}
	if *accs != "" {
		for _, a := range strings.Split(*accs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				q.Accessions = append(q.Accessions, a)
			}
		}
	}
	q.Targets = genmapper.ParseTargets(*targets)

	// The view streams to stdout row by row (text format buffers
	// internally for column widths); the rendered table never
	// materializes in this process.
	out := bufio.NewWriterSize(os.Stdout, 1<<16)
	if err := sys.StreamAnnotationView(q, out, *format, 4096, out.Flush); err != nil {
		fail(err)
	}
	if err := out.Flush(); err != nil {
		fail(err)
	}
	if *stats {
		cs := sys.CacheStats()
		fmt.Fprintf(os.Stderr, "gmquery: mapping cache: hits=%d misses=%d entries=%d\n",
			cs.Hits, cs.Misses, cs.Entries)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gmquery:", err)
	os.Exit(1)
}
