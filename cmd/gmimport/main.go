// Command gmimport runs GenMapper's two-phase import (Parse + Import) for
// native source files or a whole generated universe, storing the result in
// a database snapshot.
//
// Usage:
//
//	gmimport -db gam.snap -universe -seed 1 -scale 0.02
//	gmimport -data-dir ./data -universe          # durable: WAL + checkpoints
//	gmimport -db gam.snap -format locuslink -source LocusLink -content gene locuslink.ll
//	gmimport -db gam.snap -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"genmapper"
	"genmapper/internal/wal"
)

func main() {
	var (
		dbPath    = flag.String("db", "gam.snap", "database snapshot file (created when missing; ignored with -data-dir)")
		dataDir   = flag.String("data-dir", "", "durable data directory (WAL + checkpoints) instead of a snapshot file")
		fsync     = flag.String("fsync", "group", "WAL fsync policy with -data-dir: always, group, off (off is fastest for re-runnable bulk loads)")
		universe  = flag.Bool("universe", false, "import the full synthetic universe")
		seed      = flag.Int64("seed", 1, "universe seed")
		scale     = flag.Float64("scale", 0.02, "universe scale factor")
		format    = flag.String("format", "", "parser format for file imports (locuslink, obo, enzyme, tabular)")
		source    = flag.String("source", "", "source name for file imports")
		content   = flag.String("content", "other", "source content class (gene, protein, other)")
		structure = flag.String("structure", "flat", "source structure (flat, network)")
		release   = flag.String("release", "", "source release (audit info)")
		subsumed  = flag.Bool("subsumed", true, "derive Subsumed mappings from IS_A structures")
		stats     = flag.Bool("stats", false, "print database statistics and exit")
		verbose   = flag.Bool("v", false, "print per-source import statistics")
		engine    = flag.Bool("engine-stats", false, "print SQL engine statement-cache and planner counters after the run")
		parallel  = flag.Int("parallelism", 0, "query execution parallelism: 0 = one worker per CPU (default), 1 = serial, N>1 = shard storage into N hash partitions and fan scans/aggregates out across them")
		batchOn   = flag.Bool("batch", true, "vectorized (columnar batch) execution for eligible scans and aggregates")
		batchMin  = flag.Int64("batch-min-rows", 0, "minimum table rows before the planner picks the vectorized leg (0 = engine default)")
	)
	flag.Parse()

	sys, err := openSystem(*dbPath, *dataDir, *fsync)
	if err != nil {
		fail(err)
	}
	sys.SetParallelism(*parallel)
	sys.SetBatchExecution(*batchOn)
	if *batchMin > 0 {
		sys.SetBatchMinRows(*batchMin)
	}
	durable := *dataDir != ""
	if durable {
		defer sys.Close()
	}
	opts := genmapper.ImportOptions{DeriveSubsumed: *subsumed}

	switch {
	case *stats:
		st, err := sys.Stats()
		if err != nil {
			fail(err)
		}
		fmt.Println(st)
		return
	case *universe:
		u := genmapper.NewUniverse(genmapper.GenConfig{Seed: *seed, Scale: *scale})
		n := 0
		_, err := sys.ImportUniverse(u, opts, func(st *genmapper.ImportStats) {
			n++
			if *verbose {
				fmt.Println(st)
			} else {
				fmt.Printf("\r[%d/%d] %-24s", n, len(u.Names()), st.Source)
			}
		})
		if !*verbose {
			fmt.Println()
		}
		if err != nil {
			fail(err)
		}
	default:
		if flag.NArg() == 0 || *format == "" || *source == "" {
			fmt.Fprintln(os.Stderr, "gmimport: file import needs -format, -source and at least one file argument")
			flag.Usage()
			os.Exit(2)
		}
		info := genmapper.SourceInfo{
			Name: *source, Content: *content, Structure: *structure, Release: *release,
		}
		for _, path := range flag.Args() {
			st, err := sys.ImportFile(*format, path, info, opts)
			if err != nil {
				fail(err)
			}
			fmt.Println(st)
		}
	}

	st, err := sys.Stats()
	if err != nil {
		fail(err)
	}
	if durable {
		// Everything imported is already in the WAL; a checkpoint folds it
		// into a snapshot so the next open replays nothing.
		if err := sys.Checkpoint(); err != nil {
			fail(err)
		}
		fmt.Printf("checkpointed %s: %s\n", *dataDir, st)
	} else {
		if err := sys.SaveSnapshot(*dbPath); err != nil {
			fail(err)
		}
		fmt.Printf("saved %s: %s\n", *dbPath, st)
	}

	if *engine {
		sc := sys.SQLStmtCacheStats()
		fmt.Printf("stmt cache: %d hits / %d misses (%d/%d entries)\n",
			sc.Hits, sc.Misses, sc.Entries, sc.Capacity)
		ps := sys.SQLPlanStats()
		fmt.Printf("plans: eq=%d in=%d range=%d ordered=%d full=%d | joins idx=%d hash=%d nested=%d\n",
			ps.IndexEqScans, ps.IndexInScans, ps.IndexRangeScans, ps.OrderedScans, ps.FullScans,
			ps.IndexJoins, ps.HashJoins, ps.NestedJoins)
		if ws := sys.SQLWALStats(); ws.Enabled {
			fmt.Printf("wal: %d appends, %d fsyncs, %d group commits (max group %d), %d segments (%d bytes), %d replayed at open\n",
				ws.Appends, ws.Fsyncs, ws.GroupCommits, ws.MaxGroupSize, ws.Segments, ws.SizeBytes, ws.RecoveredRecords)
		}
	}
}

func openSystem(path, dataDir, fsync string) (*genmapper.System, error) {
	if dataDir != "" {
		policy, err := wal.ParseSyncPolicy(fsync)
		if err != nil {
			return nil, err
		}
		return genmapper.OpenDurable(dataDir, genmapper.DurableOptions{Sync: policy})
	}
	if _, err := os.Stat(path); err == nil {
		return genmapper.LoadSnapshot(path)
	}
	return genmapper.New()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gmimport:", err)
	os.Exit(1)
}
