// Command gmgen generates the synthetic universe of public data sources in
// their native file formats (LocusLink record dumps, OBO ontologies,
// Enzyme .dat files, cross-reference tables).
//
// Usage:
//
//	gmgen -out ./sources -seed 1 -scale 0.02
//	gmgen -list -scale 1.0
package main

import (
	"flag"
	"fmt"
	"os"

	"genmapper/internal/gen"
)

func main() {
	var (
		out   = flag.String("out", "sources", "output directory for generated source files")
		seed  = flag.Int64("seed", 1, "random seed (same seed + scale = identical files)")
		scale = flag.Float64("scale", 0.02, "scale factor; 1.0 reproduces the paper's ~2M objects")
		list  = flag.Bool("list", false, "list the sources and scaled object counts instead of generating")
	)
	flag.Parse()

	u := gen.NewUniverse(gen.Config{Seed: *seed, Scale: *scale})
	if *list {
		total := 0
		for _, spec := range u.SortedSpecs() {
			fmt.Printf("%-20s %-8s %-8s %-10s %8d objects\n",
				spec.Name, spec.Content, spec.Structure, spec.Format, spec.BaseCount)
			total += spec.BaseCount
		}
		fmt.Printf("%d sources, %d objects total\n", len(u.Names()), total)
		return
	}

	paths, err := u.WriteFiles(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmgen:", err)
		os.Exit(1)
	}
	fmt.Printf("generated %d source files in %s (seed=%d scale=%g)\n", len(paths), *out, *seed, *scale)
}
