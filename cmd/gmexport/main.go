// Command gmexport streams an annotation view from a database snapshot to
// a file or stdout — the CLI counterpart of the server's /export endpoint.
// Rows are rendered and written one at a time, so export size is bounded
// by the destination, not by process memory.
//
// Usage:
//
//	gmexport -db gam.snap -source LocusLink -targets Hugo,GO -format tsv -o view.tsv
//	gmexport -db gam.snap -source LocusLink -targets 'Hugo,!OMIM' -mode AND -format json
//	gmexport -db gam.snap -source Unigene -targets GO -limit 100000 -offset 500000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"genmapper"
)

func main() {
	var (
		dbPath  = flag.String("db", "gam.snap", "database snapshot file")
		source  = flag.String("source", "", "source to annotate")
		accs    = flag.String("acc", "", "comma-separated source accessions (empty = whole source)")
		targets = flag.String("targets", "", "comma-separated targets; prefix ! negates; name=acc1|acc2 restricts target objects")
		mode    = flag.String("mode", "OR", "mapping combination: AND or OR")
		format  = flag.String("format", "tsv", "output format: tsv, csv, json, text")
		text    = flag.Bool("text", false, "include object descriptions in cells")
		out     = flag.String("o", "", "output file (empty = stdout)")
		limit   = flag.Int("limit", 0, "export at most this many rows (0 = all)")
		offset  = flag.Int("offset", 0, "skip this many rows before exporting")
	)
	flag.Parse()

	if *source == "" || *targets == "" {
		fmt.Fprintln(os.Stderr, "gmexport: -source and -targets are required")
		flag.Usage()
		os.Exit(2)
	}

	sys, err := genmapper.LoadSnapshot(*dbPath)
	if err != nil {
		fail(err)
	}

	q := genmapper.Query{Source: *source, Mode: *mode, WithText: *text, Limit: *limit, Offset: *offset}
	if *accs != "" {
		for _, a := range strings.Split(*accs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				q.Accessions = append(q.Accessions, a)
			}
		}
	}
	q.Targets = genmapper.ParseTargets(*targets)

	var dst io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
		dst = f
	}
	w := bufio.NewWriterSize(dst, 1<<16)
	if err := sys.StreamAnnotationView(q, w, *format, 8192, w.Flush); err != nil {
		fail(err)
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gmexport:", err)
	os.Exit(1)
}
