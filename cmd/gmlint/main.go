// Command gmlint runs the project's custom static analyzers over Go
// packages and exits non-zero on any finding. It is the CI gate for the
// engine's concurrency and durability invariants; see README.md ("Static
// analysis") for the full list of checks and the suppression directive.
//
// Usage:
//
//	go run ./cmd/gmlint ./...
package main

import (
	"flag"
	"fmt"
	"os"

	"genmapper/internal/lint"
	"genmapper/internal/lint/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gmlint [packages]\n\nRuns the genmapper analyzers over the packages (default ./...).\nSuppress a finding with //gmlint:ignore <analyzer> <justification>.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := run(patterns); err != nil {
		fmt.Fprintln(os.Stderr, "gmlint:", err)
		os.Exit(2)
	}
}

func run(patterns []string) error {
	loader := analysis.NewLoader(".")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return err
	}
	findings, err := analysis.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		return err
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "gmlint: %d finding(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
	return nil
}
