// Command genmapper serves the interactive query interface of the paper's
// Figure 6 over HTTP: query specification, annotation views, object
// drill-down, path search, and export.
//
// Usage:
//
//	genmapper -data-dir ./data -addr :8080   # durable: WAL + checkpoints
//	genmapper -db gam.snap -addr :8080       # read from a static snapshot
//	genmapper -demo -addr :8080              # small built-in synthetic universe
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"genmapper"
	"genmapper/internal/server"
	"genmapper/internal/wal"
)

func main() {
	var (
		dbPath   = flag.String("db", "gam.snap", "database snapshot file (ignored when -data-dir is set)")
		dataDir  = flag.String("data-dir", "", "durable data directory (WAL + checkpoints); writes survive crashes")
		fsync    = flag.String("fsync", "group", "WAL fsync policy: always, group, off (with -data-dir)")
		addr     = flag.String("addr", ":8080", "listen address")
		demo     = flag.Bool("demo", false, "serve a small synthetic universe instead of a snapshot")
		seed     = flag.Int64("seed", 1, "demo universe seed")
		scale    = flag.Float64("scale", 0.002, "demo universe scale")
		pprofF   = flag.Bool("pprof", false, "expose net/http/pprof endpoints under /debug/pprof/")
		paraN    = flag.Int("parallelism", 0, "query execution parallelism: 0 = one worker per CPU (default), 1 = serial, N>1 = shard storage into N hash partitions and fan scans/aggregates out across them")
		batchOn  = flag.Bool("batch", true, "vectorized (columnar batch) execution for eligible scans and aggregates")
		batchMin = flag.Int64("batch-min-rows", 0, "minimum table rows before the planner picks the vectorized leg (0 = engine default)")
		mvccOn   = flag.Bool("mvcc", false, "MVCC snapshot isolation: readers run against snapshot epochs and never block on writers")
	)
	flag.Parse()

	var sys *genmapper.System
	var err error
	switch {
	case *dataDir != "":
		var policy wal.SyncPolicy
		if policy, err = wal.ParseSyncPolicy(*fsync); err == nil {
			log.Printf("opening durable data dir %s (fsync=%s)...", *dataDir, policy)
			sys, err = genmapper.OpenDurable(*dataDir, genmapper.DurableOptions{Sync: policy})
		}
		if err == nil {
			ws := sys.SQLWALStats()
			log.Printf("recovered: %d log records replayed, checkpoint LSN %d, %d torn tails truncated",
				ws.RecoveredRecords, ws.CheckpointLSN, ws.TornTailTruncations)
			defer sys.Close()
		}
	case *demo:
		sys, err = genmapper.New()
		if err == nil {
			u := genmapper.NewUniverse(genmapper.GenConfig{Seed: *seed, Scale: *scale})
			log.Printf("importing demo universe (seed=%d scale=%g)...", *seed, *scale)
			_, err = sys.ImportUniverse(u, genmapper.ImportOptions{DeriveSubsumed: true}, nil)
		}
	default:
		sys, err = genmapper.LoadSnapshot(*dbPath)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "genmapper:", err)
		os.Exit(1)
	}
	sys.SetParallelism(*paraN)
	sys.SetBatchExecution(*batchOn)
	if *batchMin > 0 {
		sys.SetBatchMinRows(*batchMin)
	}
	sys.SetMVCC(*mvccOn)
	st, err := sys.Stats()
	if err != nil {
		fmt.Fprintln(os.Stderr, "genmapper:", err)
		os.Exit(1)
	}
	if *pprofF {
		log.Printf("pprof endpoints enabled at /debug/pprof/")
	}
	log.Printf("serving %s on %s", st, *addr)
	h := server.NewWithConfig(sys, server.Config{EnablePprof: *pprofF})
	if err := http.ListenAndServe(*addr, h); err != nil {
		log.Fatal(err)
	}
}
