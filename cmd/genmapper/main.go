// Command genmapper serves the interactive query interface of the paper's
// Figure 6 over HTTP: query specification, annotation views, object
// drill-down, path search, and export.
//
// Usage:
//
//	genmapper -db gam.snap -addr :8080
//	genmapper -demo -addr :8080       # small built-in synthetic universe
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"genmapper"
	"genmapper/internal/server"
)

func main() {
	var (
		dbPath = flag.String("db", "gam.snap", "database snapshot file")
		addr   = flag.String("addr", ":8080", "listen address")
		demo   = flag.Bool("demo", false, "serve a small synthetic universe instead of a snapshot")
		seed   = flag.Int64("seed", 1, "demo universe seed")
		scale  = flag.Float64("scale", 0.002, "demo universe scale")
		pprofF = flag.Bool("pprof", false, "expose net/http/pprof endpoints under /debug/pprof/")
	)
	flag.Parse()

	var sys *genmapper.System
	var err error
	if *demo {
		sys, err = genmapper.New()
		if err == nil {
			u := genmapper.NewUniverse(genmapper.GenConfig{Seed: *seed, Scale: *scale})
			log.Printf("importing demo universe (seed=%d scale=%g)...", *seed, *scale)
			_, err = sys.ImportUniverse(u, genmapper.ImportOptions{DeriveSubsumed: true}, nil)
		}
	} else {
		sys, err = genmapper.LoadSnapshot(*dbPath)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "genmapper:", err)
		os.Exit(1)
	}
	st, err := sys.Stats()
	if err != nil {
		fmt.Fprintln(os.Stderr, "genmapper:", err)
		os.Exit(1)
	}
	if *pprofF {
		log.Printf("pprof endpoints enabled at /debug/pprof/")
	}
	log.Printf("serving %s on %s", st, *addr)
	h := server.NewWithConfig(sys, server.Config{EnablePprof: *pprofF})
	if err := http.ListenAndServe(*addr, h); err != nil {
		log.Fatal(err)
	}
}
