// Command gmsql is an interactive SQL shell over a GenMapper database
// snapshot — direct access to the GAM relations (source, object,
// source_rel, object_rel) through the embedded engine.
//
// Usage:
//
//	gmsql -db gam.snap
//	gmsql -data-dir ./data            # durable: writes go through the WAL
//	echo "SELECT COUNT(*) FROM object" | gmsql -db gam.snap
//
// Meta commands: .tables, .schema <table>, .save [path], .wal, .quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"genmapper/internal/sqldb"
	"genmapper/internal/wal"
)

func main() {
	var (
		dbPath   = flag.String("db", "gam.snap", "database snapshot file (created on .save when missing; ignored with -data-dir)")
		dataDir  = flag.String("data-dir", "", "durable data directory (WAL + checkpoints); every write is crash-safe")
		fsync    = flag.String("fsync", "group", "WAL fsync policy with -data-dir: always, group, off")
		quiet    = flag.Bool("q", false, "suppress the prompt (for piped input)")
		paraN    = flag.Int("parallelism", 0, "query execution parallelism: 0 = one worker per CPU (default), 1 = serial, N>1 = shard storage into N hash partitions and fan scans/aggregates out across them")
		batchOn  = flag.Bool("batch", true, "vectorized (columnar batch) execution for eligible scans and aggregates")
		batchMin = flag.Int64("batch-min-rows", 0, "minimum table rows before the planner picks the vectorized leg (0 = engine default)")
		mvccOn   = flag.Bool("mvcc", false, "MVCC snapshot isolation: readers run against snapshot epochs and never block on writers")
	)
	flag.Parse()

	var db *sqldb.DB
	switch {
	case *dataDir != "":
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmsql:", err)
			os.Exit(1)
		}
		db, err = sqldb.OpenDurable(*dataDir, sqldb.DurableOptions{Sync: policy})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmsql:", err)
			os.Exit(1)
		}
		defer db.Close()
		if !*quiet {
			ws := db.WALStats()
			fmt.Printf("opened durable %s (%d tables, %d log records replayed, fsync=%s)\n",
				*dataDir, len(db.TableNames()), ws.RecoveredRecords, *fsync)
		}
	default:
		if _, err := os.Stat(*dbPath); err == nil {
			loaded, err := sqldb.Load(*dbPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gmsql:", err)
				os.Exit(1)
			}
			db = loaded
			if !*quiet {
				fmt.Printf("loaded %s (%d tables)\n", *dbPath, len(db.TableNames()))
			}
		} else {
			db = sqldb.NewDB()
			if !*quiet {
				fmt.Printf("new empty database (will save to %s on .save)\n", *dbPath)
			}
		}
	}

	db.ConfigureParallelism(*paraN)
	db.SetBatchExecution(*batchOn)
	if *batchMin > 0 {
		db.SetBatchMinRows(*batchMin)
	}
	db.SetMVCC(*mvccOn)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func(cont bool) {
		if *quiet {
			return
		}
		if cont {
			fmt.Print("   ...> ")
		} else {
			fmt.Print("gmsql> ")
		}
	}
	prompt(false)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			if !metaCommand(db, *dbPath, trimmed) {
				return
			}
			prompt(false)
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if !strings.Contains(line, ";") && trimmed != "" {
			prompt(true)
			continue
		}
		stmt := strings.TrimSpace(pending.String())
		pending.Reset()
		if stmt != "" {
			execute(db, stmt)
		}
		prompt(false)
	}
}

// metaCommand handles dot commands; it returns false to exit.
func metaCommand(db *sqldb.DB, dbPath, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return false
	case ".tables":
		for _, name := range db.TableNames() {
			fmt.Printf("%-24s %d rows\n", name, db.RowCount(name))
		}
	case ".schema":
		if len(fields) < 2 {
			fmt.Println("usage: .schema <table>")
			break
		}
		schema := db.TableInfo(fields[1])
		if schema == nil {
			fmt.Printf("no such table %q\n", fields[1])
			break
		}
		for _, col := range schema.Columns {
			flags := ""
			if col.PrimaryKey {
				flags += " PRIMARY KEY"
			}
			if col.AutoIncrement {
				flags += " AUTOINCREMENT"
			}
			if col.NotNull {
				flags += " NOT NULL"
			}
			fmt.Printf("  %-20s %s%s\n", col.Name, col.Type, flags)
		}
	case ".save":
		path := dbPath
		if len(fields) > 1 {
			path = fields[1]
		}
		if err := db.Save(path); err != nil {
			fmt.Println("save failed:", err)
			break
		}
		fmt.Println("saved", path)
	case ".wal":
		ws := db.WALStats()
		if !ws.Enabled {
			fmt.Println("wal: disabled (open with -data-dir for durable writes)")
			break
		}
		fmt.Printf("wal: policy=%s appends=%d fsyncs=%d group_commits=%d max_group=%d\n",
			ws.Policy, ws.Appends, ws.Fsyncs, ws.GroupCommits, ws.MaxGroupSize)
		fmt.Printf("     segments=%d size=%dB checkpoint_lsn=%d lag=%d records recovered=%d torn=%d\n",
			ws.Segments, ws.SizeBytes, ws.CheckpointLSN, ws.CheckpointLagRecs, ws.RecoveredRecords, ws.TornTailTruncations)
	case ".checkpoint":
		if err := db.Checkpoint(); err != nil {
			fmt.Println("checkpoint failed:", err)
			break
		}
		fmt.Println("checkpointed at LSN", db.WALStats().CheckpointLSN)
	case ".help":
		fmt.Println("meta commands: .tables, .schema <table>, .save [path], .wal, .checkpoint, .quit")
	default:
		fmt.Printf("unknown meta command %s (try .help)\n", fields[0])
	}
	return true
}

func execute(db *sqldb.DB, stmt string) {
	stmt = strings.TrimSuffix(strings.TrimSpace(stmt), ";")
	upper := strings.ToUpper(strings.TrimSpace(stmt))
	if strings.HasPrefix(upper, "SELECT") || strings.HasPrefix(upper, "EXPLAIN") {
		rs, err := db.Query(stmt)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if strings.HasPrefix(upper, "EXPLAIN") {
			// Plan renderings are pre-formatted lines; skip the table frame.
			for _, row := range rs.Rows {
				if s, ok := row[0].(string); ok {
					fmt.Println(s)
				}
			}
			return
		}
		printResult(rs)
		return
	}
	res, err := db.Exec(stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("ok (%d rows affected)\n", res.RowsAffected)
}

func printResult(rs *sqldb.ResultSet) {
	widths := make([]int, len(rs.Columns))
	for i, c := range rs.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(rs.Rows))
	for r, row := range rs.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			s := sqldb.FormatValue(v)
			cells[r][i] = s
			if i < len(widths) && len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	line := func(parts []string) {
		var sb strings.Builder
		for i, p := range parts {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(p)
			for pad := len(p); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		fmt.Println(strings.TrimRight(sb.String(), " "))
	}
	line(rs.Columns)
	sep := make([]string, len(rs.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range cells {
		line(row)
	}
	fmt.Printf("(%d rows)\n", len(rs.Rows))
}
