// Package genmapper is the public API of this GenMapper reproduction: a
// system for flexible integration of molecular-biological annotation data
// (Do & Rahm, EDBT 2004).
//
// GenMapper physically integrates heterogeneous annotation sources into a
// central database using the generic GAM data model (SOURCE, OBJECT,
// SOURCE_REL, OBJECT_REL), exploits existing cross-references between
// sources to combine annotation knowledge, and derives tailored annotation
// views through high-level operators (Map, Compose, GenerateView).
//
// Typical usage:
//
//	sys, _ := genmapper.New()
//	u := genmapper.NewUniverse(genmapper.GenConfig{Seed: 1, Scale: 0.01})
//	sys.ImportUniverse(u, genmapper.ImportOptions{DeriveSubsumed: true}, nil)
//	table, _ := sys.AnnotationView(genmapper.Query{
//		Source:  "LocusLink",
//		Targets: []genmapper.Target{{Source: "Hugo"}, {Source: "GO"}},
//		Mode:    "OR",
//	})
//	table.WriteText(os.Stdout)
package genmapper

import (
	"fmt"
	"io"
	"strings"

	"genmapper/internal/eav"
	"genmapper/internal/gam"
	"genmapper/internal/gen"
	"genmapper/internal/graph"
	"genmapper/internal/importer"
	"genmapper/internal/ops"
	"genmapper/internal/sqldb"
	"genmapper/internal/view"
)

// Re-exported configuration and result types, so applications only import
// this package.
type (
	// SourceInfo identifies a source being imported (name + audit info).
	SourceInfo = eav.SourceInfo
	// Dataset is the parsed EAV staging representation of one source.
	Dataset = eav.Dataset
	// ImportOptions tunes the Import step.
	ImportOptions = importer.Options
	// ImportStats reports one import run.
	ImportStats = importer.Stats
	// GenConfig selects a synthetic universe (seed + scale).
	GenConfig = gen.Config
	// Universe generates synthetic source files and datasets.
	Universe = gen.Universe
	// Table is a rendered annotation view ready for export.
	Table = view.Table
	// Stats summarizes database content (sources, objects, mappings,
	// associations).
	Stats = gam.Stats
	// Source describes one integrated data source.
	Source = gam.Source
	// Object is one source object (accession, text, number).
	Object = gam.Object
	// Mapping is a set of object associations between two sources.
	Mapping = ops.Mapping
	// CacheStats reports the executor's mapping-cache effectiveness.
	CacheStats = ops.CacheStats
)

// NewUniverse scales the synthetic source catalog (1.0 reproduces the
// paper's ~2M objects / 60+ sources / ~5M associations deployment).
func NewUniverse(cfg GenConfig) *Universe { return gen.NewUniverse(cfg) }

// System is a GenMapper instance: the central database with the GAM
// schema, the source graph used for automatic mapping-path discovery, and
// the mapping-path execution engine that caches loaded and composed
// mappings across queries.
type System struct {
	db    *sqldb.DB
	repo  *gam.Repo
	graph *graph.Graph
	exec  *ops.Executor
}

// New creates an empty in-memory GenMapper system.
func New() (*System, error) {
	return Open(sqldb.NewDB())
}

// Open attaches a system to an existing embedded database (creating the
// GAM schema when missing).
func Open(db *sqldb.DB) (*System, error) {
	repo, err := gam.Open(db)
	if err != nil {
		return nil, err
	}
	g, err := graph.Build(repo)
	if err != nil {
		return nil, err
	}
	return &System{db: db, repo: repo, graph: g, exec: ops.NewExecutor(repo)}, nil
}

// DurableOptions configures OpenDurable (see sqldb.DurableOptions: fsync
// policy, segment size, checkpoint cadence).
type DurableOptions = sqldb.DurableOptions

// OpenDurable opens a crash-safe GenMapper system rooted at a data
// directory: every committed write is appended to a write-ahead log
// before it is acknowledged, a background checkpointer bounds the log,
// and opening recovers the newest checkpoint plus the log tail. Call
// Close on shutdown to release the log.
func OpenDurable(dir string, opts DurableOptions) (*System, error) {
	db, err := sqldb.OpenDurable(dir, opts)
	if err != nil {
		return nil, err
	}
	sys, err := Open(db)
	if err != nil {
		db.Close()
		return nil, err
	}
	return sys, nil
}

// Close releases the durability subsystem (checkpointer + log). It is a
// no-op for in-memory systems.
func (s *System) Close() error { return s.db.Close() }

// Checkpoint forces a durable snapshot now and prunes the covered log
// (durable systems only).
func (s *System) Checkpoint() error { return s.db.Checkpoint() }

// LoadSnapshot opens a system from a database snapshot file written by
// SaveSnapshot.
func LoadSnapshot(path string) (*System, error) {
	db, err := sqldb.Load(path)
	if err != nil {
		return nil, err
	}
	return Open(db)
}

// SaveSnapshot persists the entire database to a file.
func (s *System) SaveSnapshot(path string) error { return s.db.Save(path) }

// Restore replaces the system's database contents with a snapshot file,
// in place, and invalidates every derived layer: cached statement plans
// and open cursors (engine), the GAM lookup caches (repo), the mapping
// cache (executor), and the source graph. On a durable system the WAL is
// reset too — the restored state becomes a new checkpoint and the
// pre-restore log tail can never be replayed over it.
func (s *System) Restore(path string) error {
	if err := s.db.Restore(path); err != nil {
		return err
	}
	if err := s.repo.Reload(); err != nil {
		return err
	}
	s.exec.Reset()
	return s.RefreshGraph()
}

// SQLWALStats returns the durability counters of the embedded engine
// (zero-valued with Enabled=false for in-memory systems).
func (s *System) SQLWALStats() sqldb.WALStats { return s.db.WALStats() }

// DB exposes the embedded database (for direct SQL).
func (s *System) DB() *sqldb.DB { return s.db }

// Repo exposes the GAM repository (for operator-level access).
func (s *System) Repo() *gam.Repo { return s.repo }

// Graph exposes the source/mapping graph.
func (s *System) Graph() *graph.Graph { return s.graph }

// Executor exposes the mapping-path execution engine.
func (s *System) Executor() *ops.Executor { return s.exec }

// CacheStats returns the executor's cache hit/miss counters.
func (s *System) CacheStats() CacheStats { return s.exec.Stats() }

// SQLStmtCacheStats returns the embedded engine's statement-cache counters
// (parse-once effectiveness across every SQL path).
func (s *System) SQLStmtCacheStats() sqldb.StmtCacheStats { return s.db.StmtCacheStats() }

// SQLPlanStats returns the embedded engine's planner counters: how often
// each access path and join strategy executed.
func (s *System) SQLPlanStats() sqldb.PlanStats { return s.db.PlanStats() }

// SQLExplain compiles a SQL statement against the embedded engine and
// returns its EXPLAIN document ("json" or "text"; empty means json)
// without executing the statement. See docs/plan-json.md for the format.
func (s *System) SQLExplain(sql, format string) (string, error) {
	return s.db.Explain(sql, format)
}

// SetParallelism applies an execution-parallelism request to the embedded
// engine (0 = one worker per CPU, 1 = serial): full-table scans,
// aggregates and bulk write matching over partitioned storage fan out
// accordingly. An explicit N > 1 also re-shards storage into N hash
// partitions (a schema change — do this at startup), since the default
// partition count tracks GOMAXPROCS, which may be lower than the request.
func (s *System) SetParallelism(n int) { s.db.ConfigureParallelism(n) }

// SQLParallelStats returns the partition-parallel execution counters.
func (s *System) SQLParallelStats() sqldb.ParallelStats { return s.db.ParallelStats() }

// SetBatchExecution toggles the embedded engine's vectorized (columnar
// batch) execution leg for eligible full-table scans and aggregates. On
// by default; the row engine always remains as the fallback.
func (s *System) SetBatchExecution(on bool) { s.db.SetBatchExecution(on) }

// SetBatchMinRows sets the minimum table cardinality before the planner
// picks the vectorized leg (0 restores the engine default).
func (s *System) SetBatchMinRows(n int64) { s.db.SetBatchMinRows(n) }

// SQLBatchStats returns the vectorized execution counters and knobs.
func (s *System) SQLBatchStats() sqldb.BatchStats { return s.db.BatchStats() }

// SetMVCC toggles the embedded engine's multi-version concurrency control:
// when on, readers run against snapshot epochs with no database lock and
// never block on writers. Off by default; toggling is a schema change
// (open cursors invalidate), so set it at startup.
func (s *System) SetMVCC(on bool) { s.db.SetMVCC(on) }

// SQLMVCCStats returns the MVCC counters: current epoch, active snapshots,
// commit/abort/conflict counts and vacuum progress.
func (s *System) SQLMVCCStats() sqldb.MVCCStats { return s.db.MVCCStats() }

// SQLPartitionStats returns per-table partition layouts and per-partition
// row counts.
func (s *System) SQLPartitionStats() []sqldb.TablePartitionStats { return s.db.PartitionStats() }

// Stats returns the deployment counters (§5-style).
func (s *System) Stats() (*Stats, error) { return s.repo.Stats() }

// Sources lists all integrated sources ordered by name.
func (s *System) Sources() []*Source { return s.repo.Sources() }

// ---------------------------------------------------------------------------
// Import

// ImportDataset runs the generic Import step for one parsed dataset and
// refreshes the source graph.
func (s *System) ImportDataset(d *Dataset, opts ImportOptions) (*ImportStats, error) {
	st, err := importer.Import(s.repo, d, opts)
	if err != nil {
		return nil, err
	}
	if err := s.RefreshGraph(); err != nil {
		return nil, err
	}
	return st, nil
}

// ImportFile parses a native source file with the named format parser
// (locuslink, obo, enzyme, tabular) and imports it.
func (s *System) ImportFile(format, path string, info SourceInfo, opts ImportOptions) (*ImportStats, error) {
	st, err := importer.ImportFile(s.repo, format, path, info, opts)
	if err != nil {
		return nil, err
	}
	if err := s.RefreshGraph(); err != nil {
		return nil, err
	}
	return st, nil
}

// ImportUniverse imports every source of a synthetic universe. progress,
// when non-nil, is called after each source.
func (s *System) ImportUniverse(u *Universe, opts ImportOptions, progress func(*ImportStats)) ([]*ImportStats, error) {
	var out []*ImportStats
	for _, name := range u.Names() {
		d, err := u.Dataset(name)
		if err != nil {
			return out, err
		}
		st, err := importer.Import(s.repo, d, opts)
		if err != nil {
			return out, fmt.Errorf("genmapper: import %s: %w", name, err)
		}
		out = append(out, st)
		if progress != nil {
			progress(st)
		}
	}
	if err := s.RefreshGraph(); err != nil {
		return out, err
	}
	return out, nil
}

// RefreshGraph rebuilds the source graph from the current mappings.
func (s *System) RefreshGraph() error {
	g, err := graph.Build(s.repo)
	if err != nil {
		return err
	}
	// Preserve saved paths across refreshes.
	for _, name := range s.graph.SavedPathNames() {
		if p, ok := s.graph.SavedPath(name); ok {
			_ = g.SavePath(name, p)
		}
	}
	s.graph = g
	return nil
}

// DeriveSubsumed (re)materializes the Subsumed mapping of a network source.
func (s *System) DeriveSubsumed(source string) (int, error) {
	src := s.repo.SourceByName(source)
	if src == nil {
		return 0, fmt.Errorf("genmapper: unknown source %q", source)
	}
	return importer.DeriveSubsumed(s.repo, src.ID)
}

// ---------------------------------------------------------------------------
// Paths and composition

func (s *System) sourceIDs(names []string) ([]gam.SourceID, error) {
	out := make([]gam.SourceID, len(names))
	for i, n := range names {
		src := s.repo.SourceByName(n)
		if src == nil {
			return nil, fmt.Errorf("genmapper: unknown source %q", n)
		}
		out[i] = src.ID
	}
	return out, nil
}

func (s *System) sourceNames(ids []gam.SourceID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		if src := s.repo.SourceByID(id); src != nil {
			out[i] = src.Name
		}
	}
	return out
}

// FindPath returns the shortest mapping path between two sources as source
// names, or an error when they are not connected (§5.1's automatic path
// discovery).
func (s *System) FindPath(from, to string) ([]string, error) {
	ids, err := s.sourceIDs([]string{from, to})
	if err != nil {
		return nil, err
	}
	p := s.graph.ShortestPath(ids[0], ids[1])
	if p == nil {
		return nil, fmt.Errorf("genmapper: no mapping path from %s to %s", from, to)
	}
	return s.sourceNames(p), nil
}

// FindPathVia returns the shortest path passing through an intermediate
// source.
func (s *System) FindPathVia(from, via, to string) ([]string, error) {
	ids, err := s.sourceIDs([]string{from, via, to})
	if err != nil {
		return nil, err
	}
	p := s.graph.ShortestPathVia(ids[0], ids[1], ids[2])
	if p == nil {
		return nil, fmt.Errorf("genmapper: no mapping path from %s via %s to %s", from, via, to)
	}
	return s.sourceNames(p), nil
}

// SavePath stores a user-constructed mapping path under a name.
func (s *System) SavePath(name string, sources []string) error {
	ids, err := s.sourceIDs(sources)
	if err != nil {
		return err
	}
	return s.graph.SavePath(name, ids)
}

// ComposePath loads and composes the mappings along a path of source
// names, deriving a new mapping from the first to the last source. It runs
// on the executor, so repeated compositions hit the mapping cache.
func (s *System) ComposePath(sources []string) (*Mapping, error) {
	ids, err := s.sourceIDs(sources)
	if err != nil {
		return nil, err
	}
	return s.exec.MapPath(ids)
}

// Materialize stores a derived mapping in the central database so that
// later queries find it directly.
func (s *System) Materialize(m *Mapping) error {
	if _, err := ops.Materialize(s.repo, m); err != nil {
		return err
	}
	return s.RefreshGraph()
}

// Resolver returns the mapping resolver GenerateView uses: an existing
// mapping when available, otherwise a Compose over the shortest mapping
// path in the source graph. Both lookups run on the executor cache.
func (s *System) Resolver() ops.Resolver {
	return s.exec.Resolver(func(from, to gam.SourceID) []gam.SourceID {
		return s.graph.ShortestPath(from, to)
	})
}

// ---------------------------------------------------------------------------
// Annotation views

// Target specifies one annotation target of a query.
type Target struct {
	// Source is the target source name.
	Source string
	// Accessions restricts the target objects of interest (empty = all).
	Accessions []string
	// Negate selects source objects NOT associated with the given target
	// objects.
	Negate bool
	// Via forces an explicit mapping path (source names from the query
	// source to this target), overriding automatic path discovery.
	Via []string
	// MinEvidence drops computed associations whose evidence falls below
	// the threshold; curated facts (no evidence value) always pass.
	MinEvidence float64
}

// ParseTargets parses the CLI target-list syntax shared by gmquery and
// gmexport: comma-separated target specs, a "!" prefix negates, and
// "name=acc1|acc2" restricts the target objects of interest. Empty specs
// are skipped.
func ParseTargets(list string) []Target {
	var out []Target
	for _, spec := range strings.Split(list, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		t := Target{}
		if strings.HasPrefix(spec, "!") {
			t.Negate = true
			spec = strings.TrimSpace(spec[1:])
		}
		name, restrict, has := strings.Cut(spec, "=")
		t.Source = strings.TrimSpace(name)
		if has {
			for _, a := range strings.Split(restrict, "|") {
				if a = strings.TrimSpace(a); a != "" {
					t.Accessions = append(t.Accessions, a)
				}
			}
		}
		out = append(out, t)
	}
	return out
}

// Query describes an annotation view request (the programmatic form of
// Figure 6a's query specification).
type Query struct {
	// Source is the source whose objects are annotated.
	Source string
	// Accessions restricts the source objects (empty = whole source).
	Accessions []string
	// Targets are the annotation columns.
	Targets []Target
	// Mode combines the target mappings: "AND" or "OR" (default OR).
	Mode string
	// WithText renders cells as "accession (text)".
	WithText bool
	// Offset skips the first view rows before rendering.
	Offset int
	// Limit caps the number of rendered rows (0 = all).
	Limit int
}

// generateView runs GenerateView for the query and applies its
// Limit/Offset window, returning the object-ID view both the materializing
// and streaming render paths consume.
func (s *System) generateView(q Query) (*ops.View, error) {
	src := s.repo.SourceByName(q.Source)
	if src == nil {
		return nil, fmt.Errorf("genmapper: unknown source %q", q.Source)
	}
	sSet, err := s.objectSet(src.ID, q.Accessions)
	if err != nil {
		return nil, err
	}
	var mode ops.Combine
	switch strings.ToUpper(strings.TrimSpace(q.Mode)) {
	case "", "OR":
		mode = ops.CombineOR
	case "AND":
		mode = ops.CombineAND
	default:
		return nil, fmt.Errorf("genmapper: unknown combination mode %q (AND or OR)", q.Mode)
	}
	specs := make([]ops.TargetSpec, len(q.Targets))
	for i, t := range q.Targets {
		tgt := s.repo.SourceByName(t.Source)
		if tgt == nil {
			return nil, fmt.Errorf("genmapper: unknown target source %q", t.Source)
		}
		tSet, err := s.objectSet(tgt.ID, t.Accessions)
		if err != nil {
			return nil, err
		}
		spec := ops.TargetSpec{Source: tgt.ID, Restrict: tSet, Negate: t.Negate, MinEvidence: t.MinEvidence}
		if len(t.Via) > 0 {
			ids, err := s.sourceIDs(t.Via)
			if err != nil {
				return nil, err
			}
			if len(ids) == 0 || ids[0] != src.ID || ids[len(ids)-1] != tgt.ID {
				return nil, fmt.Errorf("genmapper: target %q: via path must lead from %s to %s", t.Source, q.Source, t.Source)
			}
			// Explicit paths run on the executor so repeated via-queries
			// hit the mapping cache like automatic ones.
			m, err := s.exec.MapPath(ids)
			if err != nil {
				return nil, fmt.Errorf("genmapper: target %q: %w", t.Source, err)
			}
			spec.Mapping = m
		}
		specs[i] = spec
	}
	v, err := ops.GenerateView(s.repo, src.ID, sSet, specs, mode, s.Resolver())
	if err != nil {
		return nil, err
	}
	applyRowWindow(v, q.Offset, q.Limit)
	return v, nil
}

// applyRowWindow slices a view down to the requested offset/limit window.
func applyRowWindow(v *ops.View, offset, limit int) {
	if offset > 0 {
		if offset >= len(v.Rows) {
			v.Rows = nil
		} else {
			v.Rows = v.Rows[offset:]
		}
	}
	if limit > 0 && limit < len(v.Rows) {
		v.Rows = v.Rows[:limit]
	}
}

// AnnotationView runs GenerateView for the query and renders the result
// (Figures 3 and 6b).
func (s *System) AnnotationView(q Query) (*Table, error) {
	v, err := s.generateView(q)
	if err != nil {
		return nil, err
	}
	return view.Render(s.repo, v, view.Options{WithText: q.WithText})
}

// StreamAnnotationView runs GenerateView for the query and streams the
// rendered rows to w in the named format (text, tsv, csv, json) without
// materializing the table. Query validation and view generation complete
// before the first byte is written, so an error return before any output
// can still be reported cleanly; flush, when non-nil, is invoked after
// every flushEvery rendered rows and once at the end.
func (s *System) StreamAnnotationView(q Query, w io.Writer, format string, flushEvery int, flush func() error) error {
	v, err := s.generateView(q)
	if err != nil {
		return err
	}
	return view.Stream(s.repo, v, view.Options{WithText: q.WithText}, w, format, flushEvery, flush)
}

// objectSet resolves accessions to an ObjectSet (nil when accessions is
// empty, meaning "all objects"). Unknown accessions are reported.
func (s *System) objectSet(src gam.SourceID, accessions []string) (ops.ObjectSet, error) {
	if len(accessions) == 0 {
		return nil, nil
	}
	m, err := s.repo.LookupObjects(src, accessions)
	if err != nil {
		return nil, err
	}
	set := make(ops.ObjectSet, len(accessions))
	var missing []string
	for _, acc := range accessions {
		id := m[acc]
		if id == 0 {
			missing = append(missing, acc)
			continue
		}
		set[id] = true
	}
	if len(set) == 0 {
		return nil, fmt.Errorf("genmapper: none of the %d accessions exist in the source (e.g. %s)",
			len(accessions), strings.Join(missing[:min(3, len(missing))], ", "))
	}
	return set, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ObjectInfo retrieves one object by source name and accession (Figure 6c).
func (s *System) ObjectInfo(source, accession string) (*Object, error) {
	src := s.repo.SourceByName(source)
	if src == nil {
		return nil, fmt.Errorf("genmapper: unknown source %q", source)
	}
	id, err := s.repo.LookupObject(src.ID, accession)
	if err != nil {
		return nil, err
	}
	if id == 0 {
		return nil, fmt.Errorf("genmapper: no object %q in source %s", accession, source)
	}
	return s.repo.Object(id)
}
