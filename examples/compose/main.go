// Compose: derive new mappings by transitivity (paper §3 "Derived
// relationships" and §4.2 Compose) — the Unigene<->GO example: combine
// Unigene<->LocusLink and LocusLink<->GO into a new mapping, then
// materialize it in the central database so later queries find it
// directly.
//
// Run with: go run ./examples/compose
package main

import (
	"fmt"
	"log"
	"strings"

	"genmapper"
)

func main() {
	sys, err := genmapper.New()
	if err != nil {
		log.Fatal(err)
	}
	u := genmapper.NewUniverse(genmapper.GenConfig{Seed: 3, Scale: 0.003})
	fmt.Println("importing synthetic universe...")
	if _, err := sys.ImportUniverse(u, genmapper.ImportOptions{}, nil); err != nil {
		log.Fatal(err)
	}

	// There is no direct Unigene<->GO mapping; the shortest mapping path
	// goes through LocusLink.
	path, err := sys.FindPath("Unigene", "GO")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("shortest mapping path:", strings.Join(path, " -> "))

	// Compose the mappings along the path.
	m, err := sys.ComposePath(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composed mapping: %d derived Unigene->GO associations\n", m.Len())

	// Materialize: the derived mapping becomes a stored Composed mapping.
	if err := sys.Materialize(m); err != nil {
		log.Fatal(err)
	}
	direct, err := sys.FindPath("Unigene", "GO")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("path after materialization:", strings.Join(direct, " -> "))

	// The materialized mapping serves annotation views without re-deriving.
	accs := []string{
		u.Accession("Unigene", 0), u.Accession("Unigene", 1),
		u.Accession("Unigene", 2), u.Accession("Unigene", 3),
	}
	table, err := sys.AnnotationView(genmapper.Query{
		Source:     "Unigene",
		Accessions: accs,
		Targets:    []genmapper.Target{{Source: "GO"}},
		Mode:       "OR",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nderived GO annotations for %d Unigene clusters (%d rows):\n", len(accs), table.RowCount())
	for _, row := range table.Rows {
		goCell := row[1]
		if goCell == "" {
			goCell = "(none)"
		}
		fmt.Printf("  %-12s %s\n", row[0], goCell)
	}

	// A longer chain: NetAffx probe sets to GO via an explicit saved path
	// (the manually constructed paths of §5.1).
	chipPath := []string{"NetAffx-HG-U133A", "Unigene", "LocusLink", "GO"}
	if err := sys.SavePath("chipToGO", chipPath); err != nil {
		log.Fatal(err)
	}
	m2, err := sys.ComposePath(chipPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsaved path %q derives %d probe->GO associations\n", "chipToGO", m2.Len())
}
