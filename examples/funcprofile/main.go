// Funcprofile: the §5.2 application — large-scale automatic gene
// functional profiling. Probe sets of an Affymetrix-style chip are mapped
// through Unigene and LocusLink to GO, a synthetic two-species expression
// study is generated (humans vs. chimpanzees in the original), and
// hypergeometric enrichment over the whole GO taxonomy identifies the
// functions with changed expression.
//
// Run with: go run ./examples/funcprofile
package main

import (
	"fmt"
	"log"

	"genmapper"
	"genmapper/internal/profile"
)

func main() {
	sys, err := genmapper.New()
	if err != nil {
		log.Fatal(err)
	}
	u := genmapper.NewUniverse(genmapper.GenConfig{Seed: 11, Scale: 0.01})
	fmt.Println("importing synthetic universe...")
	if _, err := sys.ImportUniverse(u, genmapper.ImportOptions{DeriveSubsumed: true}, nil); err != nil {
		log.Fatal(err)
	}

	pipeline, err := profile.NewPipeline(sys.Repo(), "NetAffx-HG-U133A", "Unigene", "LocusLink", "GO")
	if err != nil {
		log.Fatal(err)
	}

	// Derive the probe -> GO annotation chain through the mapping graph.
	probes, err := pipeline.ProbeAccessions()
	if err != nil {
		log.Fatal(err)
	}
	annotations, err := pipeline.ProbeAnnotations()
	if err != nil {
		log.Fatal(err)
	}
	terms, err := pipeline.TermAccessions()
	if err != nil {
		log.Fatal(err)
	}
	annotated := 0
	for _, ts := range annotations {
		if len(ts) > 0 {
			annotated++
		}
	}
	fmt.Printf("chip: %d probe sets, %d with derived GO annotations, %d GO terms\n",
		len(probes), annotated, len(terms))

	// Synthesize the expression study with the published shape (~50%
	// detected, ~12.5% of those differential) and injected functional bias.
	cfg := profile.DefaultStudyConfig()
	cfg.Seed = 42
	cfg.BiasTerms = 5
	study := profile.NewStudy(cfg, probes, annotations, terms)
	total, detected, differential := study.Counts()
	fmt.Printf("study: %d probed, %d detected, %d differentially expressed\n",
		total, detected, differential)
	fmt.Printf("ground-truth biased GO terms: %v\n\n", study.BiasedTerms)

	// Enrichment over the entire taxonomy, with IS_A rollup.
	enrichment, err := pipeline.Run(study)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top enriched GO terms (population=%d, sample=%d):\n\n",
		enrichment.PopulationSize, enrichment.SampleSize)
	fmt.Print(enrichment.FormatTable(12))

	sig := enrichment.BenjaminiHochberg(0.05)
	fmt.Printf("\n%d terms significant at FDR 0.05\n", sig)
}
