// Quickstart: build a tiny GenMapper system from hand-written annotation
// data (the paper's Figure 1 locus), run the canonical annotation-view
// query, and print the result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"genmapper"
	"genmapper/internal/eav"
)

func main() {
	sys, err := genmapper.New()
	if err != nil {
		log.Fatal(err)
	}

	// Parse step output (Table 1 of the paper): LocusLink annotations for
	// a few loci, staged in the uniform EAV format.
	ll := eav.NewDataset(genmapper.SourceInfo{
		Name: "LocusLink", Content: "gene", Structure: "flat",
		Release: "2003-10", Date: "2004-03-14",
	})
	ll.Add("353", eav.TargetName, "", "adenine phosphoribosyltransferase")
	ll.Add("353", "Hugo", "APRT", "adenine phosphoribosyltransferase")
	ll.Add("353", "Location", "16q24", "")
	ll.Add("353", "Enzyme", "2.4.2.7", "")
	ll.Add("353", "GO", "GO:0009116", "nucleoside metabolism")
	ll.Add("353", "OMIM", "102600", "")
	ll.Add("354", eav.TargetName, "", "adenosine deaminase")
	ll.Add("354", "Hugo", "ADA", "")
	ll.Add("354", "GO", "GO:0009168", "purine ribonucleoside monophosphate biosynthesis")
	ll.Add("354", "Location", "20q13", "")
	ll.Add("355", eav.TargetName, "", "orphan locus without annotations")

	// Import step: generic EAV-to-GAM transformation with duplicate
	// elimination. Target sources (Hugo, GO, ...) spring into existence.
	st, err := sys.ImportDataset(ll, genmapper.ImportOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("imported:", st)

	stats, err := sys.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("database:", stats)
	fmt.Println()

	// The annotation view of Figure 3: loci with their Hugo symbols, GO
	// functions, locations and OMIM diseases, combined with OR so
	// unannotated loci stay visible.
	table, err := sys.AnnotationView(genmapper.Query{
		Source: "LocusLink",
		Targets: []genmapper.Target{
			{Source: "Hugo"}, {Source: "GO"}, {Source: "Location"}, {Source: "OMIM"},
		},
		Mode: "OR",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("annotation view (OR):")
	if err := table.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// The same view with AND keeps only fully annotated loci.
	table, err = sys.AnnotationView(genmapper.Query{
		Source: "LocusLink",
		Targets: []genmapper.Target{
			{Source: "Hugo"}, {Source: "GO"}, {Source: "Location"}, {Source: "OMIM"},
		},
		Mode: "AND",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("annotation view (AND):")
	if err := table.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
