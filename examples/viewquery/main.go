// Viewquery: the paper's §4.2 query pattern over a synthetic universe —
// "Given a set of LocusLink genes, identify those that are located at some
// given cytogenetic positions, and annotated with some given GO functions,
// but not associated with some given OMIM diseases."
//
// Run with: go run ./examples/viewquery
package main

import (
	"fmt"
	"log"
	"os"

	"genmapper"
)

func main() {
	sys, err := genmapper.New()
	if err != nil {
		log.Fatal(err)
	}

	// A deterministic synthetic universe standing in for the public
	// sources (see DESIGN.md for the substitution rationale).
	u := genmapper.NewUniverse(genmapper.GenConfig{Seed: 7, Scale: 0.003})
	fmt.Println("importing synthetic universe...")
	if _, err := sys.ImportUniverse(u, genmapper.ImportOptions{DeriveSubsumed: true}, nil); err != nil {
		log.Fatal(err)
	}
	stats, _ := sys.Stats()
	fmt.Println("database:", stats)
	fmt.Println()

	// Pick query parameters from the generated accession space.
	locations := []string{u.Accession("Location", 0), u.Accession("Location", 1)}
	goTerms := []string{u.Accession("GO", 10), u.Accession("GO", 11), u.Accession("GO", 12)}
	diseases := []string{u.Accession("OMIM", 0), u.Accession("OMIM", 1)}

	fmt.Printf("query: loci at %v AND with GO in %v AND NOT with OMIM in %v\n\n",
		locations, goTerms, diseases)

	table, err := sys.AnnotationView(genmapper.Query{
		Source: "LocusLink",
		Targets: []genmapper.Target{
			{Source: "Location", Accessions: locations},
			{Source: "GO", Accessions: goTerms},
			{Source: "OMIM", Accessions: diseases, Negate: true},
		},
		Mode: "AND",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matched %d rows:\n\n", table.RowCount())
	if err := table.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Export the same result as TSV, the download format of Figure 6.
	fmt.Println("\nas TSV:")
	if err := table.WriteTSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
